//! The compiled static timing engine.
//!
//! [`Sta`] rides the same [`SimGraph`] the fault-simulation and ATPG
//! kernels compile — CSR fanin edges, dense op codes, the flattened
//! levelized order — with a flat per-cell delay table (a
//! [`CompiledDelays`](occ_sim::CompiledDelays)). One forward pass over
//! the levelized order yields per-cell **arrival** times (the latest a
//! cell's output settles after the launch clock edge); one backward
//! pass from the capture points of a [`CaptureTargets`] set yields
//! per-cell **departure** times (the longest remaining path to a
//! capturing flop or observed primary output). `arrival + departure`
//! is the longest structural launch→capture path through a cell, and
//! `window − (arrival + departure)` is its slack under a capture
//! window — the quantity that decides which delay defects a detection
//! through that cell actually screens.
//!
//! All buffers are allocated once in [`Sta::new`] and reused by every
//! [`Sta::compute`] call; a recompute performs no heap allocation
//! (gated by `timing_bench`). The naive, allocation-heavy
//! [`reference_arrivals`](crate::reference_arrivals) oracle pins the
//! arrival values exactly, and `tests/timing_equivalence.rs` pins them
//! against the event-driven simulator's settled waveforms.

use occ_fsim::{FrameSpec, OpCode, SimGraph};
use occ_sim::Time;

/// Departure sentinel: no path from the cell to any capture point.
const UNREACHED: Time = Time::MAX;

/// Which observation points terminate launch→capture paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureTargets {
    /// `domains[d]` — flops of domain `d` capture.
    domains: Vec<bool>,
    /// Primary outputs are strobed.
    observe_po: bool,
}

impl CaptureTargets {
    /// Targets of one capture procedure: the domains pulsed in its
    /// final (capture) cycle, plus the POs when the procedure strobes
    /// them at that cycle.
    pub fn of_spec(spec: &FrameSpec, n_domains: usize) -> Self {
        let capture = spec.capture_frame();
        let mut domains = vec![false; n_domains];
        if let Some(cycle) = spec.cycles().last() {
            for &d in &cycle.pulses {
                if d < n_domains {
                    domains[d] = true;
                }
            }
        }
        CaptureTargets {
            domains,
            observe_po: spec.po_observe_frames().contains(&capture),
        }
    }

    /// Functional targets of one domain: its flops capture every cycle;
    /// POs are consumed downstream at the same speed.
    pub fn domain(d: usize, n_domains: usize) -> Self {
        let mut domains = vec![false; n_domains];
        if d < n_domains {
            domains[d] = true;
        }
        CaptureTargets {
            domains,
            observe_po: true,
        }
    }

    /// Every flop and every PO captures (the full-netlist view).
    pub fn all(n_domains: usize) -> Self {
        CaptureTargets {
            domains: vec![true; n_domains],
            observe_po: true,
        }
    }

    /// True when flops of `domain` capture.
    #[inline]
    pub fn captures_domain(&self, domain: usize) -> bool {
        self.domains.get(domain).copied().unwrap_or(false)
    }

    /// True when primary outputs are strobed.
    #[inline]
    pub fn observes_po(&self) -> bool {
        self.observe_po
    }
}

/// Per-cell arrival/departure times over one compiled graph.
///
/// # Examples
///
/// ```
/// use occ_netlist::{Logic, NetlistBuilder};
/// use occ_fsim::{CaptureModel, ClockBinding, FrameSpec};
/// use occ_sim::DelayModel;
/// use occ_timing::{CaptureTargets, Sta};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("t");
/// let clk = b.input("clk");
/// let se = b.input("se");
/// let si = b.input("si");
/// let d = b.input("d");
/// let f0 = b.sdff(d, clk, se, si);
/// let g = b.not(f0);
/// let f1 = b.sdff(g, clk, se, f0);
/// b.output("q", f1);
/// let nl = b.finish()?;
/// let mut binding = ClockBinding::new();
/// binding.add_domain("a", clk);
/// binding.constrain(se, Logic::Zero);
/// binding.mask(si);
/// let model = CaptureModel::new(&nl, binding)?;
///
/// let table = DelayModel::default().compile(&nl);
/// let mut sta = Sta::new(model.graph().cells());
/// let spec = FrameSpec::broadside("loc", &[0], 2).hold_pi(true).observe_po(false);
/// sta.compute(model.graph(), table.as_slice(), &CaptureTargets::of_spec(&spec, 1));
/// // f0 launches at its 30 ps clock-to-out; the inverter adds 10 ps.
/// assert_eq!(sta.arrival(g.index()), 40);
/// // From g's output the path ends right at f1's D pin.
/// assert_eq!(sta.departure(g.index()), Some(0));
/// assert_eq!(sta.path_through(g.index()), Some(40));
/// assert_eq!(sta.slack(g.index(), 6_666), Some(6_626));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sta {
    arrival: Vec<Time>,
    depart: Vec<Time>,
}

impl Sta {
    /// An engine sized for a graph with `cells` cells. All scratch
    /// lives here; [`Sta::compute`] reuses it without allocating.
    pub fn new(cells: usize) -> Self {
        Sta {
            arrival: vec![0; cells],
            depart: vec![UNREACHED; cells],
        }
    }

    /// Recomputes arrival and departure times for one delay table and
    /// capture-target set.
    ///
    /// Launch model: stateful cells (flops, latches, clock gates, RAM)
    /// present their new value one cell delay (clock-to-out) after the
    /// launch edge; primary inputs and ties are stable, modelled as
    /// settling at the edge itself (time 0) — the conservative choice
    /// for held-PI at-speed procedures.
    ///
    /// # Panics
    ///
    /// Panics if `delay_ps` or the graph disagree with the engine's
    /// compiled cell count.
    pub fn compute(&mut self, graph: &SimGraph, delay_ps: &[Time], targets: &CaptureTargets) {
        let mut sta_span = occ_obs::span("sta.compute");
        sta_span.attr_u64("cells", graph.cells() as u64);
        self.compute_arrivals(graph, delay_ps);

        // Backward pass: departure times from the capture points.
        self.depart.fill(UNREACHED);
        for fi in 0..graph.flop_count() {
            let meta = graph.flop_meta(fi);
            if !targets.captures_domain(meta.domain as usize) {
                continue;
            }
            // The capture path ends at the sample pins: D always, and
            // the scan-mux legs for mux-scan flops.
            self.seed(meta.d);
            if meta.mux_scan {
                self.seed(meta.se);
                self.seed(meta.si);
            }
        }
        if targets.observes_po() {
            for &po in graph.po_cells() {
                self.seed(po);
            }
        }
        for &c in graph.comb_order().iter().rev() {
            let ci = c as usize;
            if self.depart[ci] == UNREACHED {
                continue;
            }
            let through = self.depart[ci] + delay_ps[ci];
            for &src in graph.fanins(ci) {
                let s = src as usize;
                if self.depart[s] == UNREACHED || self.depart[s] < through {
                    self.depart[s] = through;
                }
            }
        }
    }

    /// The forward half of [`Sta::compute`] alone: per-cell arrival
    /// times, leaving departures untouched. This is the pass
    /// [`reference_arrivals`](crate::reference_arrivals) mirrors and
    /// `timing_bench` races.
    ///
    /// # Panics
    ///
    /// Panics if `delay_ps` or the graph disagree with the engine's
    /// compiled cell count.
    pub fn compute_arrivals(&mut self, graph: &SimGraph, delay_ps: &[Time]) {
        let n = graph.cells();
        assert_eq!(n, self.arrival.len(), "graph/engine cell count mismatch");
        assert_eq!(n, delay_ps.len(), "graph/delay-table cell count mismatch");
        for (c, arrival) in self.arrival.iter_mut().enumerate() {
            *arrival = match graph.op(c) {
                OpCode::State => delay_ps[c],
                _ => 0,
            };
        }
        for &c in graph.comb_order() {
            let ci = c as usize;
            let mut t = 0;
            for &src in graph.fanins(ci) {
                t = t.max(self.arrival[src as usize]);
            }
            self.arrival[ci] = t + delay_ps[ci];
        }
    }

    #[inline]
    fn seed(&mut self, cell: u32) {
        let c = cell as usize;
        if self.depart[c] == UNREACHED {
            self.depart[c] = 0;
        }
    }

    /// Settle time of a cell's output after the launch edge.
    #[inline]
    pub fn arrival(&self, cell: usize) -> Time {
        self.arrival[cell]
    }

    /// The per-cell arrival table (indexed by cell).
    #[inline]
    pub fn arrivals(&self) -> &[Time] {
        &self.arrival
    }

    /// Longest remaining path from the cell's output to a capture
    /// point, or `None` when no capture point is reachable.
    #[inline]
    pub fn departure(&self, cell: usize) -> Option<Time> {
        let d = self.depart[cell];
        (d != UNREACHED).then_some(d)
    }

    /// Longest launch→capture path through the cell, or `None` when
    /// unobservable under the targets.
    #[inline]
    pub fn path_through(&self, cell: usize) -> Option<Time> {
        self.departure(cell).map(|d| self.arrival[cell] + d)
    }

    /// Slack of the cell under a capture window (saturating at zero:
    /// a structurally failing path simply has no margin), or `None`
    /// when unobservable.
    #[inline]
    pub fn slack(&self, cell: usize, window_ps: Time) -> Option<Time> {
        self.path_through(cell).map(|p| window_ps.saturating_sub(p))
    }

    /// The longest arrival anywhere in the graph (the critical settle
    /// time).
    pub fn max_arrival(&self) -> Time {
        self.arrival.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_fsim::{CaptureModel, ClockBinding, CycleSpec};
    use occ_netlist::{Logic, NetlistBuilder};
    use occ_sim::DelayModel;

    /// Two-domain rig: dom-A flop → inv → AND(with PI) → dom-B flop,
    /// with a PO hanging off the AND.
    fn rig() -> (
        occ_netlist::Netlist,
        occ_netlist::CellId,
        occ_netlist::CellId,
        occ_netlist::CellId,
    ) {
        let mut b = NetlistBuilder::new("t");
        let cka = b.input("cka");
        let ckb = b.input("ckb");
        let se = b.input("se");
        let si = b.input("si");
        let d = b.input("d");
        let fa = b.sdff(d, cka, se, si);
        let inv = b.not(fa);
        let g = b.and2(inv, d);
        let _fb = b.sdff(g, ckb, se, fa);
        b.output("po", g);
        (b.finish().unwrap(), inv, g, d)
    }

    fn model(nl: &occ_netlist::Netlist) -> CaptureModel<'_> {
        let mut binding = ClockBinding::new();
        binding.add_domain("a", nl.find("cka").unwrap());
        binding.add_domain("b", nl.find("ckb").unwrap());
        binding.constrain(nl.find("se").unwrap(), Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        CaptureModel::new(nl, binding).unwrap()
    }

    #[test]
    fn arrival_and_departure_over_the_rig() {
        let (nl, inv, g, d) = rig();
        let m = model(&nl);
        let table = DelayModel::default().compile(&nl);
        let mut sta = Sta::new(m.graph().cells());

        // Capture only in domain B, POs masked.
        let spec = occ_fsim::FrameSpec::new(
            "x",
            vec![CycleSpec::pulsing(&[0]), CycleSpec::pulsing(&[1])],
        )
        .hold_pi(true)
        .observe_po(false);
        sta.compute(
            m.graph(),
            table.as_slice(),
            &CaptureTargets::of_spec(&spec, 2),
        );
        assert_eq!(sta.arrival(inv.index()), 40); // 30 clk2q + 10
        assert_eq!(sta.arrival(g.index()), 50);
        // inv → g → fb.D: one more gate after inv.
        assert_eq!(sta.departure(inv.index()), Some(10));
        assert_eq!(sta.departure(g.index()), Some(0));
        assert_eq!(sta.path_through(g.index()), Some(50));
        assert_eq!(sta.slack(g.index(), 6_666), Some(6_616));
        // PI arrival is 0; its departure runs through the AND.
        assert_eq!(sta.arrival(d.index()), 0);
        assert_eq!(sta.departure(d.index()).unwrap(), 10);
        assert!(sta.max_arrival() >= 50);

        // With POs strobed the AND output itself is a capture point —
        // departure stays 0 (already seeded by fb) but the PO cell
        // becomes reachable.
        let po = nl.find("po").unwrap();
        assert_eq!(sta.departure(po.index()), None, "masked PO unreachable");
        let spec_po = occ_fsim::FrameSpec::new("x", vec![CycleSpec::pulsing(&[1])]);
        sta.compute(
            m.graph(),
            table.as_slice(),
            &CaptureTargets::of_spec(&spec_po, 2),
        );
        assert_eq!(sta.departure(po.index()), Some(0));

        // Functional domain-A targets strobe POs too: g is observable
        // through the PO with zero remaining path.
        sta.compute(m.graph(), table.as_slice(), &CaptureTargets::domain(0, 2));
        assert_eq!(sta.departure(g.index()), Some(0));
        // With domain A capturing and POs masked, nothing downstream
        // of the AND captures: g has no departure at all.
        let spec_a = occ_fsim::FrameSpec::new("a", vec![CycleSpec::pulsing(&[0])])
            .hold_pi(true)
            .observe_po(false);
        sta.compute(
            m.graph(),
            table.as_slice(),
            &CaptureTargets::of_spec(&spec_a, 2),
        );
        assert_eq!(sta.departure(g.index()), None);
        assert_eq!(sta.slack(g.index(), 6_666), None);
        // fa's D-pin source (the PI d) is a capture path.
        assert_eq!(sta.departure(d.index()), Some(0));
    }

    #[test]
    fn slack_saturates_at_zero() {
        let (nl, _, g, _) = rig();
        let m = model(&nl);
        let table = DelayModel::default().compile(&nl);
        let mut sta = Sta::new(m.graph().cells());
        sta.compute(m.graph(), table.as_slice(), &CaptureTargets::all(2));
        assert_eq!(sta.slack(g.index(), 1), Some(0));
    }
}
