//! EDT-style scan compression, as used by the paper's device ("357
//! balanced internal scan chains ... with 36 external scan channels"):
//! encode deterministic care bits through the linear decompressor,
//! verify delivery, and compare ATE vector-memory cost with and without
//! compression.
//!
//! Run with: `cargo run --release --example scan_compression`

use occ::atpg::AtpgOptions;
use occ::core::ClockingMode;
use occ::dft::{AteCostModel, EdtCodec, EdtConfig};
use occ::flow::{FaultKind, TestFlow};
use occ::netlist::Logic;
use occ::soc::{generate, SocConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A scaled-down version of the paper's geometry.
    let codec = EdtCodec::new(EdtConfig {
        channels: 4,
        chains: 36,
        shift_len: 32,
        lfsr_len: 64,
        warmup: 16,
        seed: 2005,
    });
    println!(
        "decompressor: {} chains from {} channels (ratio {:.1}x)",
        codec.config().chains,
        codec.config().channels,
        codec.compression_ratio()
    );

    // A sparse deterministic pattern: ~40 care bits (typical ATPG
    // patterns specify only a few percent of all cells).
    let mut rng = StdRng::seed_from_u64(42);
    let mut cares = Vec::new();
    while cares.len() < 40 {
        let chain = rng.gen_range(0..36);
        let cycle = rng.gen_range(0..32);
        if !cares.iter().any(|&(ch, cy, _)| ch == chain && cy == cycle) {
            cares.push((chain, cycle, rng.gen_bool(0.5)));
        }
    }
    let channel_data = codec.encode(&cares).expect("sparse cares encode");
    let delivered = codec.expand(&channel_data);
    for &(chain, cycle, v) in &cares {
        assert_eq!(delivered[chain][cycle], v, "care bit mismatch");
    }
    println!("encoded and delivered {} care bits exactly", cares.len());

    // The unload side: an XOR space compactor folds 36 chains into 4
    // channels; a single chain difference stays visible.
    let mut bits = vec![Logic::Zero; 36];
    bits[17] = Logic::One;
    let compacted = codec.compact(&bits);
    println!("compactor: single flipped chain 17 appears on channel outputs {compacted:?}");

    // ATE economics — the paper's closing argument: "increased pattern
    // count requires a more extensive use of an on-chip technique to
    // reduce scan chain length." The pattern count comes from a real
    // on-chip-clocking ATPG run through the TestFlow pipeline (the CPF
    // rows are the ones whose pattern counts grow), scaled to the
    // paper's device size.
    let soc = generate(&SocConfig::tiny(42));
    let report = TestFlow::new(&soc)
        .clocking(ClockingMode::SimpleCpf)
        .fault_model(FaultKind::Transition)
        .mask_bidi(true)
        .atpg(AtpgOptions {
            random_patterns: 64,
            backtrack_limit: 24,
            ..AtpgOptions::default()
        })
        .run()
        .expect("simple CPF flow validates");
    println!(
        "\nTestFlow under the simple CPF: {} patterns at {:.2}% coverage",
        report.patterns(),
        report.coverage_pct()
    );
    // The paper's device is ~100x this toy SOC.
    let patterns = report.patterns() * 100;
    let uncompressed = AteCostModel::low_cost(32 * 9, 36).cost(patterns);
    let compressed = AteCostModel::low_cost(32, 4).cost(patterns);
    println!("\n{patterns} patterns on the ATE:");
    println!("  without EDT: {uncompressed}");
    println!("  with EDT   : {compressed}");
    assert!(compressed.vector_memory_bits < uncompressed.vector_memory_bits / 10);
    println!("\nok: compression buys an order of magnitude of vector memory");
}
