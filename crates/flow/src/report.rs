//! The structured outcome of a flow run: per-stage timings, ATPG
//! counters, the coverage report and std-only JSON/CSV serialization
//! (no serde — the workspace builds offline).

use crate::source::PatternSourceBlock;
use occ_atpg::{AtpgKernelStats, AtpgResult, AtpgStats};
use occ_core::ClockingMode;
use occ_fault::{CoverageReport, FaultModel};
use occ_fsim::KernelStats;
use occ_lint::{LintGate, LintReport, RuleId};
use occ_obs::{AttrValue, SpanNode, SpanTree};
use occ_timing::QualityReport;
use std::fmt;
use std::io::{self, Write};

/// The lint stage's outcome as carried by a [`FlowReport`]: the gate
/// the flow applied plus the full [`LintReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintBlock {
    /// The severity gate the flow was configured with.
    pub gate: LintGate,
    /// The analyzer's findings and untestability verdict.
    pub report: LintReport,
}

/// One pipeline stage of a flow run, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Binding the netlist + clock binding into a capture model.
    BindModel,
    /// Building the named capture procedures for the clocking mode.
    Procedures,
    /// Enumerating and collapsing the fault universe.
    FaultUniverse,
    /// Static design-rule and testability analysis (pre-ATPG); only
    /// runs when `TestFlow::lint` was configured.
    Lint,
    /// The ATPG run itself (bootstrap, PODEM, fault sim, compaction).
    Atpg,
    /// The embedded pattern-source pass: LBIST generation + MISR
    /// grading, or EDT compacted-observation re-grade; only runs when
    /// `TestFlow::pattern_source` selected an embedded source.
    PatternSource,
    /// Structural classification of leftover faults.
    Classify,
    /// The delay-test-quality pass (STA + timed re-grade); only runs
    /// when `TestFlow::timing` was configured.
    Timing,
}

impl Stage {
    /// The stable machine-readable stage name.
    pub fn label(self) -> &'static str {
        match self {
            Stage::BindModel => "bind-model",
            Stage::Procedures => "procedures",
            Stage::FaultUniverse => "fault-universe",
            Stage::Lint => "lint",
            Stage::Atpg => "atpg",
            Stage::PatternSource => "pattern-source",
            Stage::Classify => "classify",
            Stage::Timing => "timing",
        }
    }

    /// The inverse of [`Stage::label`]: the stage a span name denotes,
    /// if any (how per-stage timings are derived from the span
    /// recorder).
    pub fn from_label(label: &str) -> Option<Stage> {
        match label {
            "bind-model" => Some(Stage::BindModel),
            "procedures" => Some(Stage::Procedures),
            "fault-universe" => Some(Stage::FaultUniverse),
            "lint" => Some(Stage::Lint),
            "atpg" => Some(Stage::Atpg),
            "pattern-source" => Some(Stage::PatternSource),
            "classify" => Some(Stage::Classify),
            "timing" => Some(Stage::Timing),
            _ => None,
        }
    }
}

/// The captured span forest of a traced flow run (opt-in via
/// [`TestFlow::trace`](crate::TestFlow::trace) or a `trace: true`
/// wire request). Absent on untraced runs — their reports are
/// byte-identical to before tracing existed.
#[derive(Debug)]
pub struct TraceBlock {
    /// The span forest: the `flow` root span (stage spans beneath it,
    /// detail spans beneath those) plus any sibling roots recorded in
    /// the same scope (per-job artifact-cache spans).
    pub tree: SpanTree,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Wall-clock seconds spent in one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTiming {
    /// Which stage.
    pub stage: Stage,
    /// Elapsed seconds.
    pub seconds: f64,
}

/// Everything a [`TestFlow`](crate::TestFlow) run produces: identity
/// (design, mode, engine), per-stage timings, ATPG statistics, the
/// coverage report and the full [`AtpgResult`] (pattern set + fault
/// statuses) for downstream consumers.
#[derive(Debug)]
pub struct FlowReport {
    /// Design name.
    pub design: String,
    /// The clocking mode the flow ran under.
    pub clocking: ClockingMode,
    /// The fault model targeted.
    pub fault_model: FaultModel,
    /// Fault-sim engine label (`serial` / `sharded` / `auto`).
    pub engine: String,
    /// ATPG engine label (`reference` / `compiled`).
    pub atpg_engine: String,
    /// Resolved worker-thread count.
    pub threads: usize,
    /// Number of capture procedures offered to ATPG.
    pub procedures: usize,
    /// Per-stage wall-clock timings, in execution order.
    pub stages: Vec<StageTiming>,
    /// Coverage / efficiency statistics (the Table 1 columns),
    /// snapshotted when the flow completed. Re-derive with
    /// `result.report()` after mutating `result.faults`.
    pub coverage: CoverageReport,
    /// Compiled fault-sim kernel statistics: graph shape (cells
    /// compiled, observability-cone sizes) plus the grading work the
    /// engine performed (faults graded, cone-pruned faults, events
    /// propagated). All-zero for engines without a compiled kernel.
    pub kernel: KernelStats,
    /// ATPG kernel statistics: PODEM decisions and backtracks, value-
    /// engine events and incremental vs full re-simulations. Events
    /// are zero for the reference engine (it counts nothing).
    pub atpg_kernel: AtpgKernelStats,
    /// The lint stage's gate and findings. `None` unless the flow ran
    /// with `TestFlow::lint` — reports of unlinted flows are
    /// unchanged.
    pub lint: Option<LintBlock>,
    /// Delay-test quality (SDQL, weighted coverage, slack histogram,
    /// per-procedure capture windows). `None` unless the flow ran with
    /// `TestFlow::timing` — reports of untimed flows are unchanged.
    pub delay_quality: Option<QualityReport>,
    /// Embedded pattern-source accounting (MISR signature / aliasing,
    /// EDT compression / compactor masking). `None` for external-ATPG
    /// flows — their reports are unchanged.
    pub pattern_source: Option<PatternSourceBlock>,
    /// The captured span forest. `None` unless the flow ran with
    /// `TestFlow::trace(true)` — untraced reports are unchanged.
    pub trace: Option<TraceBlock>,
    /// The full ATPG result: compacted pattern set and fault statuses.
    pub result: AtpgResult,
}

impl FlowReport {
    /// Generated pattern count (scan loads).
    pub fn patterns(&self) -> usize {
        self.result.patterns.len()
    }

    /// ATPG run counters.
    pub fn stats(&self) -> &AtpgStats {
        &self.result.stats
    }

    /// Test coverage in percent.
    pub fn coverage_pct(&self) -> f64 {
        self.coverage.coverage_pct()
    }

    /// ATPG efficiency in percent.
    pub fn efficiency_pct(&self) -> f64 {
        self.coverage.efficiency_pct()
    }

    /// Total wall-clock seconds across all stages.
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.seconds).sum()
    }

    /// Seconds spent in one stage (0.0 if the stage did not run).
    pub fn stage_seconds(&self, stage: Stage) -> f64 {
        self.stages
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.seconds)
            .sum()
    }

    /// Serializes the report (minus the raw pattern data) as one JSON
    /// object.
    pub fn to_json(&self) -> String {
        let mut out = Vec::new();
        self.write_json(&mut out).expect("Vec writer cannot fail");
        String::from_utf8(out).expect("JSON writer emits UTF-8")
    }

    /// Writes the JSON form of the report.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_json(&self, w: &mut dyn Write) -> io::Result<()> {
        let fm = match self.fault_model {
            FaultModel::StuckAt => "stuck-at",
            FaultModel::Transition => "transition",
        };
        write!(
            w,
            "{{\"design\":{},\"clocking\":{},\"fault_model\":\"{fm}\",\
             \"engine\":{},\"atpg_engine\":{},\"threads\":{},\
             \"procedures\":{},\"patterns\":{}",
            json_string(&self.design),
            json_string(&self.clocking.label()),
            json_string(&self.engine),
            json_string(&self.atpg_engine),
            self.threads,
            self.procedures,
            self.patterns(),
        )?;
        let c = &self.coverage;
        write!(
            w,
            ",\"total_faults\":{},\"detected\":{},\"untestable\":{},\
             \"aborted\":{},\"constrained\":{},\"undetected\":{},\
             \"coverage_pct\":{},\"efficiency_pct\":{}",
            c.total,
            c.detected,
            c.untestable,
            c.aborted,
            c.constrained,
            c.undetected,
            json_f64(self.coverage_pct()),
            json_f64(self.efficiency_pct()),
        )?;
        let s = &self.result.stats;
        write!(
            w,
            ",\"stats\":{{\"targeted\":{},\"podem_calls\":{},\"tests_found\":{},\
             \"aborted_calls\":{},\"patterns_before_compaction\":{},\"fsim_batches\":{},\
             \"lint_pruned\":{}}}",
            s.targeted,
            s.podem_calls,
            s.tests_found,
            s.aborted_calls,
            s.patterns_before_compaction,
            s.fsim_batches,
            s.lint_pruned,
        )?;
        let k = &self.kernel;
        write!(
            w,
            ",\"kernel\":{{\"cells\":{},\"comb_cells\":{},\"flops\":{},\
             \"cone_scan\":{},\"cone_po\":{},\"faults_graded\":{},\
             \"cone_pruned\":{},\"events\":{}}}",
            k.cells,
            k.comb_cells,
            k.flops,
            k.cone_scan,
            k.cone_po,
            k.faults_graded,
            k.cone_pruned,
            k.events,
        )?;
        let a = &self.atpg_kernel;
        write!(
            w,
            ",\"atpg_kernel\":{{\"decisions\":{},\"backtracks\":{},\
             \"events\":{},\"incremental_resims\":{},\"full_resims\":{},\
             \"seeded_sims\":{}}}",
            a.decisions, a.backtracks, a.events, a.incremental_resims, a.full_resims, a.seeded_sims,
        )?;
        if let Some(lint) = &self.lint {
            let r = &lint.report;
            write!(
                w,
                ",\"lint\":{{\"gate\":{},\"errors\":{},\"warnings\":{},\
                 \"untestable\":{},\"cells_scanned\":{},\"faults_scanned\":{},\
                 \"rules\":{{",
                json_string(lint.gate.label()),
                r.errors(),
                r.warnings(),
                r.untestable.len(),
                r.cells_scanned,
                r.faults_scanned,
            )?;
            for (i, rule) in RuleId::ALL.iter().enumerate() {
                if i > 0 {
                    write!(w, ",")?;
                }
                write!(w, "{}:{}", json_string(rule.code()), r.count(*rule))?;
            }
            write!(w, "}}}}")?;
        }
        if let Some(q) = &self.delay_quality {
            write!(
                w,
                ",\"delay_quality\":{{\"sdql\":{},\"weighted_coverage_pct\":{},\
                 \"lambda_ps\":{},\"faults\":{},\"detected_timed\":{},\
                 \"mean_test_slack_ps\":{},\"min_test_slack_ps\":{},\
                 \"max_test_slack_ps\":{},\"bucket_ps\":{},\"histogram\":[",
                json_f64(q.sdql),
                json_f64(q.weighted_coverage_pct),
                json_f64(q.lambda_ps),
                q.faults,
                q.detected_timed,
                json_f64(q.mean_test_slack_ps),
                q.min_test_slack_ps,
                q.max_test_slack_ps,
                q.bucket_ps,
            )?;
            for (i, n) in q.histogram.iter().enumerate() {
                if i > 0 {
                    write!(w, ",")?;
                }
                write!(w, "{n}")?;
            }
            write!(w, "],\"windows\":[")?;
            for (i, win) in q.windows.iter().enumerate() {
                if i > 0 {
                    write!(w, ",")?;
                }
                write!(
                    w,
                    "{{\"name\":{},\"window_ps\":{},\"at_speed\":{}}}",
                    json_string(&win.name),
                    win.window_ps,
                    win.at_speed,
                )?;
            }
            write!(w, "]}}")?;
        }
        if let Some(ps) = &self.pattern_source {
            write!(
                w,
                ",\"pattern_source\":{{\"source\":{},\"kernel_detected\":{},\
                 \"source_detected\":{},\"aliased\":{},\"compactor_masked\":{},\
                 \"x_masked\":{},\"signature\":{},\"signature_valid\":{},\
                 \"x_sources\":{},\"compression_ratio\":{},\"encode_splits\":{},\
                 \"dropped_cubes\":{}}}",
                json_string(&ps.source),
                ps.kernel_detected,
                ps.source_detected,
                ps.aliased,
                ps.compactor_masked,
                ps.x_masked,
                ps.signature
                    .map_or_else(|| "null".to_owned(), |s| s.to_string()),
                ps.signature_valid
                    .map_or_else(|| "null".to_owned(), |v| v.to_string()),
                ps.x_sources,
                json_f64(ps.compression_ratio),
                ps.encode_splits,
                ps.dropped_cubes,
            )?;
        }
        if let Some(tr) = &self.trace {
            write!(w, ",\"trace\":{{\"spans\":[")?;
            for (i, node) in tr.tree.roots.iter().enumerate() {
                if i > 0 {
                    write!(w, ",")?;
                }
                write_span_node(w, node)?;
            }
            write!(w, "]}}")?;
        }
        write!(w, ",\"stages\":[")?;
        for (i, st) in self.stages.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(
                w,
                "{{\"stage\":{},\"seconds\":{}}}",
                json_string(st.stage.label()),
                json_f64(st.seconds)
            )?;
        }
        write!(
            w,
            "],\"total_seconds\":{}}}",
            json_f64(self.total_seconds())
        )
    }

    /// The CSV header matching [`FlowReport::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "design,clocking,fault_model,engine,atpg_engine,threads,procedures,patterns,\
         total_faults,detected,untestable,aborted,constrained,undetected,\
         coverage_pct,efficiency_pct,total_seconds"
    }

    /// One CSV data row (no trailing newline).
    pub fn to_csv_row(&self) -> String {
        let fm = match self.fault_model {
            FaultModel::StuckAt => "stuck-at",
            FaultModel::Transition => "transition",
        };
        let c = &self.coverage;
        format!(
            "{},{},{fm},{},{},{},{},{},{},{},{},{},{},{},{:.4},{:.4},{:.4}",
            csv_field(&self.design),
            self.clocking.label(),
            csv_field(&self.engine),
            csv_field(&self.atpg_engine),
            self.threads,
            self.procedures,
            self.patterns(),
            c.total,
            c.detected,
            c.untestable,
            c.aborted,
            c.constrained,
            c.undetected,
            self.coverage_pct(),
            self.efficiency_pct(),
            self.total_seconds(),
        )
    }

    /// The CSV header of the `lint` block (see
    /// [`FlowReport::lint_csv_row`]).
    pub fn lint_csv_header() -> &'static str {
        "design,gate,errors,warnings,untestable,lint_pruned,\
         l001,l002,l003,l004,l005,l006,l007,l008"
    }

    /// One CSV row of lint data, when the flow ran the lint stage.
    pub fn lint_csv_row(&self) -> Option<String> {
        let lint = self.lint.as_ref()?;
        let r = &lint.report;
        let counts: Vec<String> = RuleId::ALL
            .iter()
            .map(|rule| r.count(*rule).to_string())
            .collect();
        Some(format!(
            "{},{},{},{},{},{},{}",
            csv_field(&self.design),
            lint.gate.label(),
            r.errors(),
            r.warnings(),
            r.untestable.len(),
            self.result.stats.lint_pruned,
            counts.join(","),
        ))
    }

    /// The CSV header of the `delay_quality` block (see
    /// [`FlowReport::delay_quality_csv_row`]).
    pub fn delay_quality_csv_header() -> &'static str {
        "design,clocking,sdql,weighted_coverage_pct,lambda_ps,faults,detected_timed,\
         mean_test_slack_ps,min_test_slack_ps,max_test_slack_ps,min_window_ps,max_window_ps"
    }

    /// One CSV row of delay-quality data, when the flow ran the timing
    /// stage.
    pub fn delay_quality_csv_row(&self) -> Option<String> {
        let q = self.delay_quality.as_ref()?;
        let min_w = q.windows.iter().map(|w| w.window_ps).min().unwrap_or(0);
        let max_w = q.windows.iter().map(|w| w.window_ps).max().unwrap_or(0);
        Some(format!(
            "{},{},{:.6},{:.4},{:.1},{},{},{:.1},{},{},{},{}",
            csv_field(&self.design),
            self.clocking.label(),
            q.sdql,
            q.weighted_coverage_pct,
            q.lambda_ps,
            q.faults,
            q.detected_timed,
            q.mean_test_slack_ps,
            q.min_test_slack_ps,
            q.max_test_slack_ps,
            min_w,
            max_w,
        ))
    }

    /// The CSV header of the `pattern_source` block (see
    /// [`FlowReport::pattern_source_csv_row`]).
    pub fn pattern_source_csv_header() -> &'static str {
        "design,source,kernel_detected,source_detected,aliased,compactor_masked,\
         x_masked,signature,signature_valid,x_sources,compression_ratio,\
         encode_splits,dropped_cubes"
    }

    /// One CSV row of pattern-source data, when the flow ran an
    /// embedded pattern source.
    pub fn pattern_source_csv_row(&self) -> Option<String> {
        let ps = self.pattern_source.as_ref()?;
        Some(format!(
            "{},{},{},{},{},{},{},{},{},{},{:.2},{},{}",
            csv_field(&self.design),
            csv_field(&ps.source),
            ps.kernel_detected,
            ps.source_detected,
            ps.aliased,
            ps.compactor_masked,
            ps.x_masked,
            ps.signature
                .map_or_else(String::new, |s| format!("{s:#018x}")),
            ps.signature_valid
                .map_or_else(String::new, |v| v.to_string()),
            ps.x_sources,
            ps.compression_ratio,
            ps.encode_splits,
            ps.dropped_cubes,
        ))
    }

    /// Writes header + row as a two-line CSV document; a flow that ran
    /// the timing stage appends the `delay_quality` header + row pair
    /// (untimed reports are byte-identical to before the stage
    /// existed).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv(&self, w: &mut dyn Write) -> io::Result<()> {
        writeln!(w, "{}", Self::csv_header())?;
        writeln!(w, "{}", self.to_csv_row())?;
        if let Some(row) = self.lint_csv_row() {
            writeln!(w, "{}", Self::lint_csv_header())?;
            writeln!(w, "{row}")?;
        }
        if let Some(row) = self.delay_quality_csv_row() {
            writeln!(w, "{}", Self::delay_quality_csv_header())?;
            writeln!(w, "{row}")?;
        }
        if let Some(row) = self.pattern_source_csv_row() {
            writeln!(w, "{}", Self::pattern_source_csv_header())?;
            writeln!(w, "{row}")?;
        }
        Ok(())
    }
}

impl fmt::Display for FlowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "flow '{}' under {} [{} engine, {} atpg, {} thread(s), {} procedures]",
            self.design,
            self.clocking,
            self.engine,
            self.atpg_engine,
            self.threads,
            self.procedures
        )?;
        writeln!(
            f,
            "  coverage {:.2}%  efficiency {:.2}%  patterns {}",
            self.coverage_pct(),
            self.efficiency_pct(),
            self.patterns()
        )?;
        for st in &self.stages {
            writeln!(f, "  stage {:<15} {:>8.3}s", st.stage.label(), st.seconds)?;
        }
        if self.kernel.faults_graded > 0 {
            writeln!(
                f,
                "  kernel: {} cells compiled, {} faults graded \
                 ({} cone-pruned), {} events",
                self.kernel.cells,
                self.kernel.faults_graded,
                self.kernel.cone_pruned,
                self.kernel.events
            )?;
        }
        if self.atpg_kernel.decisions > 0 {
            writeln!(
                f,
                "  atpg kernel: {} decisions ({} backtracks), \
                 {} events, {} incremental / {} full / {} seeded resims",
                self.atpg_kernel.decisions,
                self.atpg_kernel.backtracks,
                self.atpg_kernel.events,
                self.atpg_kernel.incremental_resims,
                self.atpg_kernel.full_resims,
                self.atpg_kernel.seeded_sims
            )?;
        }
        if let Some(lint) = &self.lint {
            writeln!(
                f,
                "  lint [{}]: {} error(s), {} warning(s), \
                 {} untestable fault(s) pre-classified ({} searches skipped)",
                lint.gate,
                lint.report.errors(),
                lint.report.warnings(),
                lint.report.untestable.len(),
                self.result.stats.lint_pruned
            )?;
        }
        if let Some(q) = &self.delay_quality {
            write!(f, "  {q}")?;
        }
        if let Some(ps) = &self.pattern_source {
            writeln!(
                f,
                "  pattern source [{}]: {} of {} kernel detections survive \
                 compaction ({} aliased, {} compactor-masked, {} X-masked)",
                ps.source,
                ps.source_detected,
                ps.kernel_detected,
                ps.aliased,
                ps.compactor_masked,
                ps.x_masked
            )?;
            match (ps.signature, ps.signature_valid) {
                (Some(sig), Some(valid)) => writeln!(
                    f,
                    "    signature {sig:#018x} ({}, {} X-source(s))",
                    if valid { "valid" } else { "invalid" },
                    ps.x_sources
                )?,
                (None, Some(_)) => writeln!(
                    f,
                    "    signature unpredictable (X reached the MISR; {} X-source(s))",
                    ps.x_sources
                )?,
                _ => writeln!(
                    f,
                    "    compression {:.1}x, {} cube split(s), {} dropped",
                    ps.compression_ratio, ps.encode_splits, ps.dropped_cubes
                )?,
            }
        }
        if let Some(tr) = &self.trace {
            writeln!(f, "  trace ({} span(s)):", tr.tree.len())?;
            for line in tr.tree.render().lines() {
                writeln!(f, "    {line}")?;
            }
        }
        write!(f, "  total {:.3}s", self.total_seconds())
    }
}

/// Writes one span node (and its children) as a JSON object.
fn write_span_node(w: &mut dyn Write, node: &SpanNode) -> io::Result<()> {
    let r = &node.record;
    write!(
        w,
        "{{\"name\":{},\"start_seconds\":{},\"seconds\":{}",
        json_string(r.name),
        json_f64(r.start_seconds()),
        json_f64(r.seconds()),
    )?;
    if r.alloc_bytes > 0 {
        write!(w, ",\"alloc_bytes\":{}", r.alloc_bytes)?;
    }
    if !r.attrs().is_empty() {
        write!(w, ",\"attrs\":{{")?;
        for (i, (k, v)) in r.attrs().iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            let value = match v {
                AttrValue::U64(n) => n.to_string(),
                AttrValue::I64(n) => n.to_string(),
                AttrValue::F64(x) => json_f64(*x),
                AttrValue::Str(s) => json_string(s),
            };
            write!(w, "{}:{value}", json_string(k))?;
        }
        write!(w, "}}")?;
    }
    if !node.children.is_empty() {
        write!(w, ",\"children\":[")?;
        for (i, child) in node.children.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write_span_node(w, child)?;
        }
        write!(w, "]")?;
    }
    write!(w, "}}")
}

/// Minimal JSON string quoting (control chars, quotes, backslashes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON-safe float formatting (JSON has no NaN/Infinity literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_owned()
    }
}

/// Quotes a CSV field when it contains a delimiter, quote or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.500000");
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
