//! Quick profiling helper for experiment runtimes, self-profiled
//! through the `occ_obs` span recorder: each experiment installs a
//! detail-recording scope, runs the flow, and prints the resulting
//! span tree — stage → substage wall time, span attributes and (via
//! the counting global allocator wired in as the allocation probe)
//! per-span allocation deltas. Kernel throughput and peak RSS ride
//! along as before.

#[path = "../alloc_track.rs"]
mod alloc_track;

#[global_allocator]
static ALLOC: alloc_track::CountingAlloc = alloc_track::CountingAlloc;

use occ_bench::{run_experiment, ExperimentId, Table1Options};
use occ_flow::{EngineChoice, SpanRecorder, SpanTree, Stage};
use occ_soc::{generate, SocConfig};
use std::time::Instant;

fn main() {
    // Spans opened while a scope is installed now carry alloc deltas.
    occ_obs::set_alloc_probe(|| alloc_track::snapshot().bytes);

    let cfg = SocConfig::tiny(1);
    let t0 = Instant::now();
    let soc = generate(&cfg);
    println!("gen: {:?} cells={}", t0.elapsed(), soc.netlist().len());
    let opts = Table1Options {
        flops_per_domain: 24,
        engine: EngineChoice::Auto,
        ..Table1Options::default()
    };
    for id in [ExperimentId::A, ExperimentId::B, ExperimentId::C] {
        // One recorder per experiment keeps each tree self-contained.
        let recorder = SpanRecorder::new();
        let row = {
            let _scope = recorder.install(true);
            run_experiment(&soc, id, &opts).expect("tiny SOC flows validate")
        };
        let stats = row.report.stats();
        println!(
            "{id}: {:.3}s cov={:.2}% eff={:.2}% pats={} targeted={} \
             podem_calls={} aborted={} fsim_batches={}",
            row.seconds,
            row.coverage_pct,
            row.efficiency_pct,
            row.patterns,
            stats.targeted,
            stats.podem_calls,
            stats.aborted_calls,
            stats.fsim_batches
        );
        // Kernel throughput: grading work per ATPG second.
        let k = &row.report.kernel;
        let atpg_secs = row.report.stage_seconds(Stage::Atpg).max(1e-9);
        println!(
            "    kernel: {} cells ({} comb, {} flops), cone {}/{} (scan/po), \
             {} faults graded ({} cone-pruned, {:.1}%), {} events, \
             {:.0} faults/s, {:.0} events/s",
            k.cells,
            k.comb_cells,
            k.flops,
            k.cone_scan,
            k.cone_po,
            k.faults_graded,
            k.cone_pruned,
            100.0 * k.cone_pruned as f64 / (k.faults_graded.max(1)) as f64,
            k.events,
            k.faults_graded as f64 / atpg_secs,
            k.events as f64 / atpg_secs,
        );
        // The span tree replaces the old hand-rolled per-stage wall
        // clock and whole-experiment alloc-delta bookkeeping: every
        // stage and substage carries its own time and alloc column.
        let tree = SpanTree::build(&recorder.records());
        println!("    trace ({} span(s)):", tree.len());
        for line in tree.render().lines() {
            println!("      {line}");
        }
    }
    if let Some(kb) = alloc_track::peak_rss_kb() {
        println!("peak rss: {:.1} MiB", kb as f64 / 1024.0);
    }
}
