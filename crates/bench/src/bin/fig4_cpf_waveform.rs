//! Reproduces Figure 4: the CPF waveform diagram — scan_en drop, single
//! scan_clk trigger pulse, three PLL cycles of latency, exactly two
//! released at-speed pulses on clk_out.
//!
//! `--vcd` dumps the trace as VCD; `--domain N` selects the clock
//! domain (0 = 75 MHz, 1 = 150 MHz).

use occ_bench::fig4_waveforms;

fn main() {
    let mut domain = 1usize;
    let mut vcd_wanted = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--vcd" => vcd_wanted = true,
            "--domain" => {
                domain = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--domain needs 0 or 1");
            }
            _ => {}
        }
    }
    let fig = fig4_waveforms(domain);
    if vcd_wanted {
        println!("{}", fig.vcd);
        return;
    }
    println!("Figure 4 — clock pulse filter waveform (domain {domain})");
    println!("=================================================");
    print!("{}", fig.ascii);
    println!(
        "\nreleased pulses: {} (paper: exactly 2); narrowest pulse: {:?} ps",
        fig.pulse_count, fig.min_pulse_width
    );
}
