//! Batched (64-pattern) good-machine simulation of a capture procedure.

use crate::pval::{eval_packed, PVal};
use crate::{CaptureModel, FrameSpec, Pattern};
use occ_netlist::{CellKind, Logic};

/// Good-machine values for a batch of up to 64 patterns under one
/// capture procedure.
///
/// * `frames[k-1][cell]` — node values of combinational frame `k`
///   (1-based); flop nodes carry the state *entering* the frame.
/// * `states[k][flop]` — flop states after cycle `k`; `states[0]` is the
///   scan load (non-scan flops start `X`).
#[derive(Debug, Clone)]
pub struct GoodBatch {
    /// Number of real patterns in the batch (≤ 64).
    pub n_patterns: usize,
    /// Mask with one bit per real pattern.
    pub valid_mask: u64,
    /// Per-frame node values.
    pub frames: Vec<Vec<PVal>>,
    /// Flop states; index 0 is the load state.
    pub states: Vec<Vec<PVal>>,
}

/// Simulates up to 64 patterns (all using procedure `spec`) and returns
/// the full good-machine view.
///
/// # Panics
///
/// Panics if more than 64 patterns are passed, or a pattern's shape does
/// not match the model/spec.
pub fn simulate_good(
    model: &CaptureModel<'_>,
    spec: &FrameSpec,
    patterns: &[Pattern],
) -> GoodBatch {
    assert!(patterns.len() <= 64, "PPSFP batch limit is 64 patterns");
    assert!(!patterns.is_empty(), "empty batch");
    let n_flops = model.flops().len();
    let valid_mask = if patterns.len() == 64 {
        !0u64
    } else {
        (1u64 << patterns.len()) - 1
    };

    // Load state.
    let mut state0 = vec![PVal::XX; n_flops];
    for (si, &fi) in model.scan_flops().iter().enumerate() {
        let mut pv = PVal::XX;
        for (b, p) in patterns.iter().enumerate() {
            pv = pv.with_slot(b, p.scan_load[si]);
        }
        state0[fi as usize] = pv;
    }

    let mut states = vec![state0];
    let mut frames = Vec::with_capacity(spec.frames());

    for k in 1..=spec.frames() {
        let mut vals = base_frame(model, patterns, k);
        // Flop nodes carry the entering state.
        for (fi, info) in model.flops().iter().enumerate() {
            vals[info.cell.index()] = states[k - 1][fi];
        }
        eval_frame(model, &mut vals);

        // Next state.
        let cycle = &spec.cycles()[k - 1];
        let mut next = states[k - 1].clone();
        for (fi, info) in model.flops().iter().enumerate() {
            if cycle.pulses_domain(info.domain) {
                next[fi] = sample_flop(model, &vals, info.cell);
            }
            next[fi] = apply_reset(model, &vals, info.cell, next[fi]);
        }
        states.push(next);
        frames.push(vals);
    }

    GoodBatch {
        n_patterns: patterns.len(),
        valid_mask,
        frames,
        states,
    }
}

/// Builds the frame-independent baseline: PIs, constraints, masks, ties.
pub(crate) fn base_frame(
    model: &CaptureModel<'_>,
    patterns: &[Pattern],
    frame: usize,
) -> Vec<PVal> {
    let n_cells = model.netlist().len();
    let mut vals = vec![PVal::XX; n_cells];
    for (id, cell) in model.netlist().iter() {
        match cell.kind() {
            CellKind::Tie0 => vals[id.index()] = PVal::ZERO,
            CellKind::Tie1 => vals[id.index()] = PVal::ONE,
            _ => {}
        }
    }
    for &(c, v) in model.forced() {
        vals[c.index()] = PVal::splat(v);
    }
    for &c in model.masked() {
        vals[c.index()] = PVal::XX;
    }
    for (pi_idx, &pi) in model.free_pis().iter().enumerate() {
        let mut pv = PVal::XX;
        for (b, p) in patterns.iter().enumerate() {
            pv = pv.with_slot(b, p.pis_for_frame(frame)[pi_idx]);
        }
        vals[pi.index()] = pv;
    }
    vals
}

/// Evaluates all combinational cells of a frame in levelized order.
pub(crate) fn eval_frame(model: &CaptureModel<'_>, vals: &mut [PVal]) {
    let netlist = model.netlist();
    let mut ins: Vec<PVal> = Vec::with_capacity(8);
    for &id in netlist.levelization().order() {
        let cell = netlist.cell(id);
        ins.clear();
        for &src in cell.inputs() {
            ins.push(vals[src.index()]);
        }
        if let Some(v) = eval_packed(cell.kind(), &ins) {
            vals[id.index()] = v;
        }
    }
}

/// The value a flop captures from the frame: functional D, or the scan
/// mux when the (constrained) scan enable is not zero.
pub(crate) fn sample_flop(
    model: &CaptureModel<'_>,
    vals: &[PVal],
    flop: occ_netlist::CellId,
) -> PVal {
    let cell = model.netlist().cell(flop);
    match cell.kind() {
        CellKind::Sdff | CellKind::SdffRl => {
            let d = vals[cell.inputs()[0].index()];
            let se = vals[cell.inputs()[2].index()];
            let si = vals[cell.inputs()[3].index()];
            PVal::mux2(se, d, si)
        }
        _ => vals[cell.inputs()[0].index()],
    }
}

/// Applies asynchronous-reset semantics to a captured state.
pub(crate) fn apply_reset(
    model: &CaptureModel<'_>,
    vals: &[PVal],
    flop: occ_netlist::CellId,
    state: PVal,
) -> PVal {
    let cell = model.netlist().cell(flop);
    let Some(rpin) = cell.reset() else {
        return state;
    };
    let rv = vals[rpin.index()];
    let active = match cell.kind() {
        CellKind::DffRh => rv.def1(),
        _ => rv.def0(), // DffRl / SdffRl: active low
    };
    let unknown = rv.x;
    let state = state.force(active, false);
    // Where the reset *might* be active and the state isn't already 0,
    // the state is unknown.
    state.blend(PVal::XX, unknown & !state.def0())
}

/// Scalar (single-pattern) good simulation — the reference the packed
/// path is property-tested against, and the workhorse for PODEM's
/// final-pattern verification.
pub fn simulate_good_scalar(
    model: &CaptureModel<'_>,
    spec: &FrameSpec,
    pattern: &Pattern,
) -> (Vec<Vec<Logic>>, Vec<Vec<Logic>>) {
    let batch = simulate_good(model, spec, std::slice::from_ref(pattern));
    let frames = batch
        .frames
        .iter()
        .map(|f| f.iter().map(|p| p.slot(0)).collect())
        .collect();
    let states = batch
        .states
        .iter()
        .map(|s| s.iter().map(|p| p.slot(0)).collect())
        .collect();
    (frames, states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockBinding, CycleSpec};
    use occ_netlist::NetlistBuilder;

    /// Two-domain toy: dom-A flop feeds an inverter into dom-B flop.
    fn two_domain() -> (
        occ_netlist::Netlist,
        occ_netlist::CellId,
        occ_netlist::CellId,
    ) {
        let mut b = NetlistBuilder::new("t");
        let cka = b.input("cka");
        let ckb = b.input("ckb");
        let se = b.input("se");
        let si = b.input("si");
        let d = b.input("d");
        let fa = b.sdff(d, cka, se, si);
        let inv = b.not(fa);
        let fb = b.sdff(inv, ckb, se, fa);
        b.output("q", fb);
        b.name_cell(fa, "fa");
        b.name_cell(fb, "fb");
        (b.finish().unwrap(), cka, ckb)
    }

    fn model_of(
        nl: &occ_netlist::Netlist,
        cka: occ_netlist::CellId,
        ckb: occ_netlist::CellId,
    ) -> CaptureModel<'_> {
        let mut binding = ClockBinding::new();
        binding.add_domain("a", cka);
        binding.add_domain("b", ckb);
        let se = nl.find("se").unwrap();
        binding.constrain(se, Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        CaptureModel::new(nl, binding).unwrap()
    }

    #[test]
    fn scan_load_appears_in_frame_one() {
        let (nl, cka, ckb) = two_domain();
        let model = model_of(&nl, cka, ckb);
        let spec = FrameSpec::new("p", vec![CycleSpec::pulsing(&[0, 1])]);
        let mut p = Pattern::empty(&model, &spec, 0);
        p.scan_load = vec![Logic::One, Logic::Zero];
        let g = simulate_good(&model, &spec, &[p]);
        let fa = nl.find("fa").unwrap();
        let fb = nl.find("fb").unwrap();
        assert_eq!(g.frames[0][fa.index()].slot(0), Logic::One);
        assert_eq!(g.frames[0][fb.index()].slot(0), Logic::Zero);
    }

    #[test]
    fn only_pulsed_domain_captures() {
        let (nl, cka, ckb) = two_domain();
        let model = model_of(&nl, cka, ckb);
        // Pulse only domain B: fb captures !fa, fa holds.
        let spec = FrameSpec::new("p", vec![CycleSpec::pulsing(&[1])]);
        let mut p = Pattern::empty(&model, &spec, 0);
        p.scan_load = vec![Logic::One, Logic::One];
        p.pis[0] = vec![Logic::Zero]; // d
        let g = simulate_good(&model, &spec, &[p]);
        // states[1]: fa held (1), fb captured !1 = 0.
        assert_eq!(g.states[1][0].slot(0), Logic::One);
        assert_eq!(g.states[1][1].slot(0), Logic::Zero);
    }

    #[test]
    fn two_frames_chain_captures() {
        let (nl, cka, ckb) = two_domain();
        let model = model_of(&nl, cka, ckb);
        // Frame 1: pulse A (fa <- d); frame 2: pulse B (fb <- !fa).
        let spec = FrameSpec::new(
            "p",
            vec![CycleSpec::pulsing(&[0]), CycleSpec::pulsing(&[1])],
        )
        .hold_pi(true);
        let mut p = Pattern::empty(&model, &spec, 0);
        p.scan_load = vec![Logic::Zero, Logic::Zero];
        p.pis[0] = vec![Logic::One]; // d=1
        let g = simulate_good(&model, &spec, &[p]);
        assert_eq!(g.states[1][0].slot(0), Logic::One); // fa captured d
        assert_eq!(g.states[2][1].slot(0), Logic::Zero); // fb captured !fa
    }

    #[test]
    fn non_scan_flops_start_x() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let d = b.input("d");
        let nf = b.dff(d, clk);
        let g = b.buf(nf);
        b.output("q", g);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        let model = CaptureModel::new(&nl, binding).unwrap();
        let spec = FrameSpec::new("p", vec![CycleSpec::pulsing(&[0]); 2]);
        let mut p = Pattern::empty(&model, &spec, 0);
        for f in &mut p.pis {
            f[0] = Logic::One;
        }
        let gb = simulate_good(&model, &spec, &[p]);
        // Frame 1 sees X (uninitialized), frame 2 sees the captured 1.
        assert_eq!(gb.frames[0][nf.index()].slot(0), Logic::X);
        assert_eq!(gb.frames[1][nf.index()].slot(0), Logic::One);
    }

    #[test]
    fn batch_slots_are_independent() {
        let (nl, cka, ckb) = two_domain();
        let model = model_of(&nl, cka, ckb);
        let spec = FrameSpec::new("p", vec![CycleSpec::pulsing(&[0, 1])]);
        let mut p0 = Pattern::empty(&model, &spec, 0);
        p0.scan_load = vec![Logic::One, Logic::Zero];
        let mut p1 = Pattern::empty(&model, &spec, 0);
        p1.scan_load = vec![Logic::Zero, Logic::Zero];
        let g = simulate_good(&model, &spec, &[p0, p1]);
        assert_eq!(g.valid_mask, 0b11);
        let fa = nl.find("fa").unwrap();
        assert_eq!(g.frames[0][fa.index()].slot(0), Logic::One);
        assert_eq!(g.frames[0][fa.index()].slot(1), Logic::Zero);
    }
}
