//! Recorded waveforms and queries over them.

use crate::Time;
use occ_netlist::{CellId, Logic, Netlist};
use std::collections::HashMap;

/// A recorded value change with direction information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// When the change happened.
    pub time: Time,
    /// Value before the change.
    pub from: Logic,
    /// Value after the change.
    pub to: Logic,
}

impl Edge {
    /// True for a clean 0→1 transition.
    pub fn is_rising(&self) -> bool {
        self.from == Logic::Zero && self.to == Logic::One
    }

    /// True for a clean 1→0 transition.
    pub fn is_falling(&self) -> bool {
        self.from == Logic::One && self.to == Logic::Zero
    }
}

/// Per-signal value-change history recorded by a simulator.
///
/// The trace stores, for each watched signal, the initial value and the
/// ordered list of [`Edge`]s. Queries exist for the things the paper's
/// figures assert: pulse counts in a window, minimum pulse widths
/// (glitch detection) and value sampling.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    signals: Vec<(CellId, String)>,
    history: HashMap<CellId, (Logic, Vec<Edge>)>,
    end_time: Time,
}

impl Trace {
    pub(crate) fn new() -> Self {
        Trace::default()
    }

    pub(crate) fn add_signal(&mut self, id: CellId, name: String, initial: Logic) {
        if !self.history.contains_key(&id) {
            self.signals.push((id, name));
            self.history.insert(id, (initial, Vec::new()));
        }
    }

    pub(crate) fn record(&mut self, id: CellId, time: Time, from: Logic, to: Logic) {
        if let Some((_, edges)) = self.history.get_mut(&id) {
            edges.push(Edge { time, from, to });
        }
        self.end_time = self.end_time.max(time);
    }

    pub(crate) fn set_end_time(&mut self, t: Time) {
        self.end_time = self.end_time.max(t);
    }

    /// Signals in this trace, in watch order, with display names.
    pub fn signals(&self) -> impl Iterator<Item = (CellId, &str)> {
        self.signals.iter().map(|(id, n)| (*id, n.as_str()))
    }

    /// True if `id` is being recorded.
    pub fn contains(&self, id: CellId) -> bool {
        self.history.contains_key(&id)
    }

    /// The last simulated time.
    pub fn end_time(&self) -> Time {
        self.end_time
    }

    /// All edges of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the signal was not watched.
    pub fn edges(&self, id: CellId) -> &[Edge] {
        &self.history.get(&id).expect("signal not watched").1
    }

    /// The signal value at `time` (events are applied at their timestamp).
    ///
    /// # Panics
    ///
    /// Panics if the signal was not watched.
    pub fn value_at(&self, id: CellId, time: Time) -> Logic {
        let (initial, edges) = self.history.get(&id).expect("signal not watched");
        let n = edges.partition_point(|e| e.time <= time);
        if n == 0 {
            *initial
        } else {
            edges[n - 1].to
        }
    }

    /// Counts clean rising edges within `[from, to)`.
    pub fn rising_edges_in(&self, id: CellId, from: Time, to: Time) -> usize {
        self.edges(id)
            .iter()
            .filter(|e| e.is_rising() && e.time >= from && e.time < to)
            .count()
    }

    /// The width of every positive pulse (rise→fall pair), in order.
    pub fn positive_pulse_widths(&self, id: CellId) -> Vec<Time> {
        let mut out = Vec::new();
        let mut rise: Option<Time> = None;
        for e in self.edges(id) {
            if e.is_rising() {
                rise = Some(e.time);
            } else if e.is_falling() {
                if let Some(r) = rise.take() {
                    out.push(e.time - r);
                }
            } else {
                rise = None; // X/Z excursions invalidate the pulse
            }
        }
        out
    }

    /// The narrowest positive pulse, if any (glitch detector).
    pub fn min_positive_pulse(&self, id: CellId) -> Option<Time> {
        self.positive_pulse_widths(id).into_iter().min()
    }

    /// True when the signal ever takes the value `X` or `Z` after `from`.
    pub fn has_unknown_after(&self, id: CellId, from: Time) -> bool {
        self.edges(id)
            .iter()
            .any(|e| e.time >= from && !e.to.is_definite())
    }

    /// Renders the trace as a VCD document (see [`Trace::to_vcd`] in
    /// `vcd.rs`). Provided here as a convenience alias for discoverability.
    pub fn to_vcd_for(&self, netlist: &Netlist) -> String {
        self.to_vcd(netlist.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> (Trace, CellId) {
        let id = CellId::from_index(0);
        let mut t = Trace::new();
        t.add_signal(id, "clk".into(), Logic::Zero);
        t.record(id, 10, Logic::Zero, Logic::One);
        t.record(id, 15, Logic::One, Logic::Zero);
        t.record(id, 30, Logic::Zero, Logic::One);
        t.record(id, 50, Logic::One, Logic::Zero);
        t.set_end_time(100);
        (t, id)
    }

    #[test]
    fn value_sampling() {
        let (t, id) = sample_trace();
        assert_eq!(t.value_at(id, 0), Logic::Zero);
        assert_eq!(t.value_at(id, 10), Logic::One);
        assert_eq!(t.value_at(id, 14), Logic::One);
        assert_eq!(t.value_at(id, 20), Logic::Zero);
        assert_eq!(t.value_at(id, 99), Logic::Zero);
    }

    #[test]
    fn pulse_analysis() {
        let (t, id) = sample_trace();
        assert_eq!(t.rising_edges_in(id, 0, 100), 2);
        assert_eq!(t.rising_edges_in(id, 20, 100), 1);
        assert_eq!(t.positive_pulse_widths(id), vec![5, 20]);
        assert_eq!(t.min_positive_pulse(id), Some(5));
        assert!(!t.has_unknown_after(id, 0));
    }

    #[test]
    fn unknown_detection() {
        let id = CellId::from_index(1);
        let mut t = Trace::new();
        t.add_signal(id, "s".into(), Logic::X);
        t.record(id, 5, Logic::X, Logic::One);
        t.record(id, 9, Logic::One, Logic::X);
        assert!(t.has_unknown_after(id, 6));
        assert!(!t.has_unknown_after(id, 10));
        // X excursion breaks pulse pairing
        assert_eq!(t.positive_pulse_widths(id), Vec::<Time>::new());
    }
}
