//! # occ-netlist — gate-level netlist kernel
//!
//! Flat, arena-based gate-level netlist used by every other crate in the
//! workspace: the event-driven timing simulator, the fault simulator, the
//! ATPG engine, the scan-insertion pass and the Clock-Pulse-Filter (CPF)
//! generator from *Beck et al., "Logic Design for On-Chip Test Clock
//! Generation", DATE 2005*.
//!
//! ## Model
//!
//! Every cell drives exactly one output signal, so a signal is identified
//! by the [`CellId`] of its driver (AIG-style). Multi-output macros (the
//! RAM) are modeled as a macro cell plus one [`CellKind::RamOut`] reader
//! cell per data bit.
//!
//! ## Example
//!
//! ```
//! use occ_netlist::{NetlistBuilder, Logic};
//!
//! # fn main() -> Result<(), occ_netlist::BuildError> {
//! let mut b = NetlistBuilder::new("half_adder");
//! let a = b.input("a");
//! let c = b.input("b");
//! let sum = b.xor2(a, c);
//! let carry = b.and2(a, c);
//! b.output("sum", sum);
//! b.output("carry", carry);
//! let nl = b.finish()?;
//! assert_eq!(nl.primary_inputs().len(), 2);
//! assert_eq!(nl.primary_outputs().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod cell;
mod dot;
mod error;
mod id;
mod kind;
mod logic;
mod netlist;
mod stats;
mod verilog;

pub use builder::NetlistBuilder;
pub use cell::Cell;
pub use error::{BuildError, ValidateError};
pub use id::CellId;
pub use kind::CellKind;
pub use logic::Logic;
pub use netlist::{Levelization, Netlist};
pub use stats::NetlistStats;
