//! Compiled PODEM: the reference search over a zero-allocation,
//! incrementally re-simulated value engine.
//!
//! [`CompiledPodem`] makes **exactly the same decisions** as
//! [`ReferencePodem`](crate::ReferencePodem) — the objective order,
//! backtrace tie-breaking and X-path pruning are line-for-line
//! translations — but every hot-loop data structure is compiled:
//!
//! * the dual machine is a [`DualGraphSim`] riding the model's
//!   [`SimGraph`](occ_fsim::SimGraph): flat frame arrays instead of
//!   per-call `Vec<Vec<Logic>>`, and event-driven re-evaluation of
//!   only the cone a decision changed;
//! * scan and PI decision variables resolve through flat `Vec`-indexed
//!   lookup tables instead of `HashMap<CellId, usize>`;
//! * the X-path walk and the backtrace memo use generation-stamped
//!   scratch arrays sized once, instead of a fresh `vec![false; ..]` /
//!   `HashSet` per call;
//! * backtrace input ordering replicates the reference's stable
//!   sort-by-controllability with an in-place selection loop (same
//!   order, no sort buffer).
//!
//! The result: after warm-up a PODEM decision allocates nothing
//! (`atpg_bench` gates this with the counting allocator), and the
//! equivalence sweep in `tests/atpg_equivalence.rs` pins outcome
//! identity across clocking modes and fault models.

use crate::dualsim::{polarity_logic, DualGraphSim};
use crate::engine::{AtpgEngine, AtpgKernelStats};
use crate::podem::PodemOutcome;
use crate::scoap::{Controllability, INF};
use crate::Observability;
use occ_fault::{Fault, FaultModel, FaultSite};
use occ_fsim::{CaptureModel, FrameSpec, Pattern};
use occ_netlist::{CellId, CellKind, Logic};

/// Sentinel for the flat variable lookup tables.
const NONE: u32 = u32::MAX;

/// A decision variable (same shape as the reference engine's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Var {
    /// Scan-load bit (index into the model's scan order).
    Scan(usize),
    /// Free-PI bit: `(pi index, pattern frame index)`.
    Pi(usize, usize),
}

/// The compiled PODEM engine bound to a capture model.
pub struct CompiledPodem<'m, 'a> {
    model: &'m CaptureModel<'a>,
    sim: DualGraphSim<'m, 'a>,
    /// Cell index -> scan-order slot (`NONE` for non-scan cells).
    scan_of: Vec<u32>,
    /// Cell index -> free-PI slot (`NONE` otherwise).
    pi_of: Vec<u32>,
    cc: Controllability,
    // Decision stack, reused across runs.
    stack: Vec<(Var, bool, bool)>,
    // X-path scratch: stamped visited over (cell, frame) + worklist.
    visited: Vec<u32>,
    vgen: u32,
    work: Vec<(u32, u32)>,
    // Backtrace memo: stamped failed set over (cell, frame, want).
    failed: Vec<u32>,
    fgen: u32,
    // Frame stride of the stamped tables (the bound spec's frames).
    cur_frames: usize,
    // D-frontier candidate maintenance: the levelized order and each
    // cell's position in it (`NONE` for non-combinational cells), the
    // per-frame candidate sets (as order positions, sorted on demand)
    // and a stamped membership table over (cell, frame).
    order: Vec<CellId>,
    order_pos: Vec<u32>,
    cand: Vec<Vec<u32>>,
    cand_dirty: Vec<bool>,
    cand_in: Vec<u32>,
    cgen: u32,
    // Work counters.
    decisions: u64,
    backtracks: u64,
}

impl<'m, 'a> CompiledPodem<'m, 'a> {
    /// Creates an engine for the model.
    pub fn new(model: &'m CaptureModel<'a>) -> Self {
        let n = model.netlist().len();
        let mut scan_of = vec![NONE; n];
        for (i, c) in model.scan_cells().enumerate() {
            scan_of[c.index()] = i as u32;
        }
        let mut pi_of = vec![NONE; n];
        for (i, &c) in model.free_pis().iter().enumerate() {
            pi_of[c.index()] = i as u32;
        }
        let order: Vec<CellId> = model.netlist().levelization().order().to_vec();
        let mut order_pos = vec![NONE; n];
        for (pos, &id) in order.iter().enumerate() {
            order_pos[id.index()] = pos as u32;
        }
        CompiledPodem {
            sim: DualGraphSim::new(model),
            cc: Controllability::compute(model),
            model,
            scan_of,
            pi_of,
            stack: Vec::new(),
            visited: Vec::new(),
            vgen: 0,
            work: Vec::new(),
            failed: Vec::new(),
            fgen: 0,
            cur_frames: 0,
            order,
            order_pos,
            cand: Vec::new(),
            cand_dirty: Vec::new(),
            cand_in: Vec::new(),
            cgen: 0,
            decisions: 0,
            backtracks: 0,
        }
    }

    /// Attempts to generate a test for `fault` under `spec`.
    ///
    /// `obs` must be the observability cones of the same `spec`.
    /// Outcomes are identical to
    /// [`ReferencePodem::run`](crate::ReferencePodem::run).
    pub fn run(
        &mut self,
        spec: &FrameSpec,
        obs: &Observability,
        fault: Fault,
        backtrack_limit: usize,
    ) -> PodemOutcome {
        if fault.model() == FaultModel::Transition && spec.frames() < 2 {
            return PodemOutcome::Untestable;
        }
        let n = self.model.netlist().len();
        self.cur_frames = spec.frames();
        let slots = n * spec.frames();
        if self.visited.len() < slots {
            self.visited.resize(slots, 0);
        }
        if self.failed.len() < slots * 2 {
            self.failed.resize(slots * 2, 0);
        }
        if self.cand.len() < spec.frames() {
            self.cand.resize_with(spec.frames(), Vec::new);
            self.cand_dirty.resize(spec.frames(), false);
        }
        if self.cand_in.len() < slots {
            self.cand_in.resize(slots, 0);
        }

        let mut pattern = Pattern::empty(self.model, spec, 0);
        self.sim.begin(spec, &pattern, fault);
        self.seed_candidates(spec, fault);
        self.stack.clear();
        let mut backtracks = 0usize;
        // Hard ceiling on iterations as a safety net.
        let max_iters = 200_000usize;

        for _ in 0..max_iters {
            self.sim.resimulate(spec, &pattern);
            self.drain_changed();
            if self.sim.detected(spec, fault) {
                return PodemOutcome::Test(Box::new(pattern));
            }

            let step = if !self.effect_possible(spec, obs, fault) {
                None
            } else {
                self.find_assignment(spec, obs, fault)
            };

            match step {
                Some((var, val)) => {
                    debug_assert!(
                        !self.stack.iter().any(|&(v, _, _)| v == var),
                        "backtrace returned an assigned variable"
                    );
                    self.decisions += 1;
                    self.assign(&mut pattern, var, Some(val));
                    self.stack.push((var, val, false));
                }
                None => {
                    // Backtrack: flip the deepest unflipped decision.
                    loop {
                        match self.stack.pop() {
                            Some((var, val, false)) => {
                                backtracks += 1;
                                if backtracks > backtrack_limit {
                                    return PodemOutcome::Aborted;
                                }
                                self.backtracks += 1;
                                self.decisions += 1;
                                self.assign(&mut pattern, var, Some(!val));
                                self.stack.push((var, !val, true));
                                break;
                            }
                            Some((var, _, true)) => {
                                self.assign(&mut pattern, var, None);
                            }
                            None => return PodemOutcome::Untestable,
                        }
                    }
                }
            }
        }
        PodemOutcome::Aborted
    }

    fn assign(&mut self, pattern: &mut Pattern, var: Var, val: Option<bool>) {
        let v = val.map_or(Logic::X, Logic::from_bool);
        match var {
            Var::Scan(i) => {
                pattern.scan_load[i] = v;
                self.sim.note_scan(i);
            }
            Var::Pi(i, f) => {
                pattern.pis[f][i] = v;
                self.sim.note_pi(i, f);
            }
        }
    }

    /// Cheap soundness check: can the fault effect still be activated
    /// and observed under the current (partial) assignment?
    fn effect_possible(&mut self, spec: &FrameSpec, obs: &Observability, fault: Fault) -> bool {
        let frames = spec.frames();
        let site = self.sim.site_node(fault.site());
        let v_fault = polarity_logic(fault.polarity());

        // Activation feasibility on good values.
        match fault.model() {
            FaultModel::Transition => {
                let before = self.sim.good(frames - 1, site);
                let after = self.sim.good(frames, site);
                let init = v_fault; // STR: 0 before, 1 after.
                let fin = !v_fault;
                if before.is_definite() && before != init {
                    return false;
                }
                if after.is_definite() && after != fin {
                    return false;
                }
            }
            FaultModel::StuckAt => {
                // Some active frame must allow the opposite value.
                let scan_q_site = self.stuck_scan_q_flop(fault);
                let state_ok = scan_q_site.is_some_and(|fi| {
                    let s = self.sim.good_state(frames, fi);
                    !s.is_definite() || s != v_fault
                });
                let frame_ok = (1..=frames).any(|k| {
                    let g = self.sim.good(k, site);
                    !g.is_definite() || g != v_fault
                });
                if !frame_ok && !state_ok {
                    return false;
                }
            }
        }

        // Observation feasibility: dynamic X-path check (same walk as
        // the reference, over stamped scratch instead of fresh arrays).
        if self.stuck_scan_q_flop(fault).is_some() {
            return true; // observed directly at unload
        }
        self.xpath_to_observation(spec, obs, fault)
    }

    /// Forward reachability from the fault site over "carrier" nodes —
    /// nodes where the faulty value is unknown or differs from the good
    /// value — to an observation point. Identical traversal to the
    /// reference engine; the visited set is a generation-stamped array
    /// reused across calls.
    fn xpath_to_observation(
        &mut self,
        spec: &FrameSpec,
        obs: &Observability,
        fault: Fault,
    ) -> bool {
        let CompiledPodem {
            model,
            sim,
            visited,
            vgen,
            work,
            ..
        } = self;
        let nl = model.netlist();
        let frames = spec.frames();
        *vgen = vgen.wrapping_add(1);
        if *vgen == 0 {
            visited.fill(0);
            *vgen = 1;
        }
        let gen = *vgen;
        let carrier = |id: CellId, k: usize| {
            let g = sim.good(k, id);
            let f = sim.faulty(k, id);
            !g.is_definite() || !f.is_definite() || g != f
        };
        let state_carrier = |fi: usize, k: usize| {
            let g = sim.good_state(k, fi);
            let f = sim.faulty_state(k, fi);
            !g.is_definite() || !f.is_definite() || g != f
        };

        work.clear();
        let active = |k: usize| match fault.model() {
            FaultModel::StuckAt => true,
            FaultModel::Transition => k == frames,
        };
        let seed_cell = fault.site().effect_cell();
        let site = sim.site_node(fault.site());
        for k in 1..=frames {
            if !active(k) {
                continue;
            }
            for &s in &[seed_cell, site] {
                let slot = s.index() * frames + (k - 1);
                if carrier(s, k) && visited[slot] != gen {
                    visited[slot] = gen;
                    work.push((s.index() as u32, k as u32));
                }
            }
        }

        while let Some((ci, kw)) = work.pop() {
            let id = CellId::from_index(ci as usize);
            let k = kw as usize;
            // Observation?
            if spec.po_observe_frames().contains(&k) && nl.cell(id).kind() == CellKind::Output {
                return true;
            }
            let _ = obs;
            for &f in nl.fanouts(id) {
                let kind = nl.cell(f).kind();
                if kind.is_flop() {
                    let Some(fi) = model.flop_index(f) else {
                        continue;
                    };
                    let info = model.flops()[fi];
                    if !spec.cycles()[k - 1].pulses_domain(info.domain) {
                        continue;
                    }
                    if !state_carrier(fi, k) {
                        continue;
                    }
                    // Captured: observable at unload if scan and the
                    // state survives (conservatively: reached at any
                    // frame; survival is handled by continuing the
                    // walk below).
                    if info.is_scan && k == frames {
                        return true;
                    }
                    if k < frames {
                        // The (possibly corrupt) state feeds frame k+1,
                        // and survives further holds.
                        let mut kk = k + 1;
                        loop {
                            let slot = f.index() * frames + (kk - 1);
                            if carrier(f, kk) && visited[slot] != gen {
                                visited[slot] = gen;
                                work.push((f.index() as u32, kk as u32));
                            }
                            // Holding flops keep the corrupt state alive
                            // to later frames.
                            if kk >= frames || spec.cycles()[kk - 1].pulses_domain(info.domain) {
                                break;
                            }
                            kk += 1;
                        }
                        // A scan flop holding its corrupt capture to the
                        // end is observed at unload.
                        if info.is_scan
                            && !(k + 1..=frames)
                                .any(|j| spec.cycles()[j - 1].pulses_domain(info.domain))
                            && state_carrier(fi, frames)
                        {
                            return true;
                        }
                    }
                } else if kind.is_combinational() && carrier(f, k) {
                    let slot = f.index() * frames + (k - 1);
                    if visited[slot] != gen {
                        visited[slot] = gen;
                        work.push((f.index() as u32, k as u32));
                    }
                }
            }
        }
        false
    }

    /// Rebuilds the D-frontier candidate sets after a full simulation:
    /// every cell whose output differs between the machines (in the
    /// broad sense — differing definite values *or* differing
    /// definiteness) is noted together with its propagation fanouts,
    /// plus the input-site cell in its active frames. The sets are a
    /// conservative superset — [`CompiledPodem::find_assignment`]
    /// re-applies the exact per-cell filters — kept current by
    /// [`CompiledPodem::drain_changed`] after each incremental resim,
    /// so decisions no longer walk the whole levelized order.
    fn seed_candidates(&mut self, spec: &FrameSpec, fault: Fault) {
        let frames = spec.frames();
        self.cgen = self.cgen.wrapping_add(1);
        if self.cgen == 0 {
            self.cand_in.fill(0);
            self.cgen = 1;
        }
        for f in 0..frames {
            self.cand[f].clear();
            self.cand_dirty[f] = false;
        }
        if let FaultSite::Input { cell, .. } = fault.site() {
            let first_active = match fault.model() {
                FaultModel::StuckAt => 1,
                FaultModel::Transition => frames,
            };
            for k in first_active..=frames {
                self.note_candidate(cell.index(), k - 1);
            }
        }
        let n = self.model.netlist().len();
        for k in 1..=frames {
            for ci in 0..n {
                let id = CellId::from_index(ci);
                let g = self.sim.good(k, id);
                let f = self.sim.faulty(k, id);
                let broad_diff = (g.is_definite() && f.is_definite() && g != f)
                    || (g.is_definite() != f.is_definite());
                if broad_diff {
                    self.note_changed(ci, k - 1);
                }
            }
        }
    }

    /// Feeds the value engine's changed-cell log of the last resim into
    /// the candidate sets.
    fn drain_changed(&mut self) {
        let buf = self.sim.take_changed();
        for &(frame0, ci) in &buf {
            self.note_changed(ci as usize, frame0 as usize);
        }
        self.sim.restore_changed(buf);
    }

    /// A cell's value moved (or differs) at `frame0`: the cell itself
    /// and its propagation fanouts become D-frontier candidates there.
    fn note_changed(&mut self, ci: usize, frame0: usize) {
        self.note_candidate(ci, frame0);
        let model = self.model;
        let graph = model.graph();
        for &e in graph.prop_fanouts(ci) {
            if e & occ_fsim::FLOP_TAG == 0 {
                self.note_candidate(e as usize, frame0);
            }
        }
    }

    #[inline]
    fn note_candidate(&mut self, ci: usize, frame0: usize) {
        let pos = self.order_pos[ci];
        if pos == NONE {
            return; // non-combinational cells never sit on the frontier
        }
        let slot = ci * self.cur_frames + frame0;
        if self.cand_in[slot] != self.cgen {
            self.cand_in[slot] = self.cgen;
            self.cand[frame0].push(pos);
            self.cand_dirty[frame0] = true;
        }
    }

    /// For stuck faults on a scan flop's Q net: the flop's model index
    /// (they are observed directly during unload).
    fn stuck_scan_q_flop(&self, fault: Fault) -> Option<usize> {
        if fault.model() != FaultModel::StuckAt {
            return None;
        }
        let FaultSite::Output(c) = fault.site() else {
            return None;
        };
        let fi = self.model.flop_index(c)?;
        self.model.flops()[fi].is_scan.then_some(fi)
    }

    /// Derives objectives in priority order and backtraces each until
    /// one reaches an unassigned decision variable. Same priorities as
    /// the reference engine.
    fn find_assignment(
        &mut self,
        spec: &FrameSpec,
        obs: &Observability,
        fault: Fault,
    ) -> Option<(Var, bool)> {
        let frames = spec.frames();
        let site = self.sim.site_node(fault.site());
        let v_fault = polarity_logic(fault.polarity());

        // 1. Activation objectives: if unjustified, they are mandatory —
        // when they cannot be backtraced the branch is dead.
        match fault.model() {
            FaultModel::Transition => {
                let before = self.sim.good(frames - 1, site);
                if !before.is_definite() {
                    return self.backtrace(spec, site, frames - 1, v_fault == Logic::One);
                }
                let after = self.sim.good(frames, site);
                if !after.is_definite() {
                    return self.backtrace(spec, site, frames, v_fault == Logic::Zero);
                }
            }
            FaultModel::StuckAt => {
                let want = v_fault == Logic::Zero; // opposite of stuck value
                                                   // A stuck Q on a scan flop is observed directly at
                                                   // unload: justify the flop's *final captured state* to
                                                   // the opposite value.
                if let Some(fi) = self.stuck_scan_q_flop(fault) {
                    let s = self.sim.good_state(frames, fi);
                    if !s.is_definite() {
                        if let Some(hit) = self.backtrace_state(spec, site, want) {
                            return Some(hit);
                        }
                    }
                }
                let mut best = None;
                for k in (1..=frames).rev() {
                    let g = self.sim.good(k, site);
                    if !g.is_definite() && obs.observable(k, fault.site().effect_cell()) {
                        if let Some(hit) = self.backtrace(spec, site, k, want) {
                            best = Some(hit);
                            break;
                        }
                    }
                }
                if best.is_some() {
                    return best;
                }
                // If the site is already activated somewhere (including
                // via the unload-observed state), fall through to
                // propagation; otherwise dead end.
                let state_activated = self.stuck_scan_q_flop(fault).is_some_and(|fi| {
                    let s = self.sim.good_state(frames, fi);
                    s.is_definite() && s != v_fault
                });
                let activated = state_activated
                    || (1..=frames).any(|k| {
                        let g = self.sim.good(k, site);
                        g.is_definite() && g != v_fault
                    });
                if !activated {
                    return None;
                }
            }
        }

        // 2. Propagation: every observable D-frontier gate, every X
        // side input, until a backtrace lands on a variable — same
        // enumeration order as the reference (frames ascending, then
        // levelized order), but generated from the maintained candidate
        // sets instead of walking the whole order: only cells near a
        // machine difference are visited, and the exact reference
        // filters re-run per candidate so the outcome is identical.
        let nl = self.model.netlist();
        let pin_site_cell = match fault.site() {
            FaultSite::Input { cell, .. } => Some(cell),
            FaultSite::Output(_) => None,
        };
        let active = |k: usize| match fault.model() {
            FaultModel::StuckAt => true,
            FaultModel::Transition => k == frames,
        };
        for k in 1..=frames {
            if self.cand_dirty[k - 1] {
                self.cand[k - 1].sort_unstable();
                self.cand_dirty[k - 1] = false;
            }
            let mut ci = 0usize;
            while ci < self.cand[k - 1].len() {
                let id = self.order[self.cand[k - 1][ci] as usize];
                ci += 1;
                let g_out = self.sim.good(k, id);
                let f_out = self.sim.faulty(k, id);
                if g_out.is_definite() && f_out.is_definite() {
                    continue; // settled (either propagated or blocked)
                }
                if !obs.observable(k, id) {
                    continue;
                }
                let cell = nl.cell(id);
                let has_d = (pin_site_cell == Some(id) && active(k))
                    || cell.inputs().iter().any(|&i| {
                        let g = self.sim.good(k, i);
                        let f = self.sim.faulty(k, i);
                        (g.is_definite() && f.is_definite() && g != f)
                            || (g.is_definite() != f.is_definite())
                    });
                if !has_d {
                    continue;
                }
                let mut oi = 0usize;
                while let Some((node, want)) = self.side_objective(cell.kind(), id, k, oi) {
                    oi += 1;
                    if let Some(hit) = self.backtrace(spec, node, k, want) {
                        return Some(hit);
                    }
                }
            }
        }
        None
    }

    /// The `oi`-th side-input objective of a D-frontier gate, in
    /// exactly the order the reference engine materializes them.
    fn side_objective(
        &self,
        kind: CellKind,
        id: CellId,
        frame: usize,
        oi: usize,
    ) -> Option<(CellId, bool)> {
        let nl = self.model.netlist();
        let cell = nl.cell(id);
        let is_x = |i: CellId| !self.sim.good(frame, i).is_definite();
        let nth_x = |j: usize| cell.inputs().iter().copied().filter(|&i| is_x(i)).nth(j);
        match kind {
            CellKind::And | CellKind::Nand => nth_x(oi).map(|n| (n, true)),
            CellKind::Or | CellKind::Nor => nth_x(oi).map(|n| (n, false)),
            CellKind::Xor | CellKind::Xnor => {
                // Each X input yields (n, false) then (n, true).
                nth_x(oi / 2).map(|n| (n, oi % 2 == 1))
            }
            CellKind::Mux2 => {
                // Every X pin yields two entries; the select is steered
                // toward a differing leg first.
                let sel = cell.inputs()[0];
                let d1 = cell.inputs()[2];
                let pin = nth_x(oi / 2)?;
                if pin == sel {
                    let g = self.sim.good(frame, d1);
                    let f = self.sim.faulty(frame, d1);
                    let first = g.is_definite() && f.is_definite() && g != f;
                    Some((sel, if oi.is_multiple_of(2) { first } else { !first }))
                } else {
                    Some((pin, oi.is_multiple_of(2)))
                }
            }
            _ => None,
        }
    }

    /// Backtraces a flop's *post-procedure state* (what scan unload
    /// reads) to a decision variable: the sample pin at its last
    /// capture, or the scan-load bit if its domain never pulses.
    fn backtrace_state(&mut self, spec: &FrameSpec, ff: CellId, want: bool) -> Option<(Var, bool)> {
        let nl = self.model.netlist();
        let cell = nl.cell(ff);
        let domain = self
            .model
            .flop_index(ff)
            .map(|fi| self.model.flops()[fi].domain)?;
        let mut k = spec.frames() + 1;
        loop {
            if k == 1 {
                return self.scan_var(ff).map(|si| (Var::Scan(si), want));
            }
            if spec.cycles()[k - 2].pulses_domain(domain) {
                let next = match cell.kind() {
                    CellKind::Sdff | CellKind::SdffRl => {
                        let se = self.sim.good(k - 1, cell.inputs()[2]);
                        if se == Logic::One {
                            cell.inputs()[3]
                        } else {
                            cell.inputs()[0]
                        }
                    }
                    _ => cell.inputs()[0],
                };
                return self.backtrace(spec, next, k - 1, want);
            }
            k -= 1;
        }
    }

    #[inline]
    fn scan_var(&self, cell: CellId) -> Option<usize> {
        let si = self.scan_of[cell.index()];
        (si != NONE).then_some(si as usize)
    }

    /// Walks an objective back to an unassigned decision variable —
    /// identical exploration to the reference engine; the failed-goal
    /// memo is a generation-stamped array instead of a per-call
    /// `HashSet`.
    fn backtrace(
        &mut self,
        spec: &FrameSpec,
        node: CellId,
        frame: usize,
        want: bool,
    ) -> Option<(Var, bool)> {
        self.fgen = self.fgen.wrapping_add(1);
        if self.fgen == 0 {
            self.failed.fill(0);
            self.fgen = 1;
        }
        self.backtrace_rec(spec, node, frame, want, 0)
    }

    #[inline]
    fn failed_slot(&self, node: CellId, frame: usize, want: bool) -> usize {
        (node.index() * self.cur_frames + (frame - 1)) * 2 + want as usize
    }

    fn backtrace_rec(
        &mut self,
        spec: &FrameSpec,
        node: CellId,
        frame: usize,
        want: bool,
        depth: usize,
    ) -> Option<(Var, bool)> {
        let slot = self.failed_slot(node, frame, want);
        if depth > 4_096 || self.failed[slot] == self.fgen {
            return None;
        }
        // Only X-valued nodes can be justified; a definite node means
        // this particular path needs no (or permits no) new assignment.
        if self.sim.good(frame, node).is_definite() {
            return None;
        }
        // Statically uncontrollable goals cannot be backtraced.
        if self.cc.cost(node, want) >= INF {
            return None;
        }
        let nl = self.model.netlist();
        let cell = nl.cell(node);
        let result = (|| {
            // Stop at decision variables.
            if cell.kind() == CellKind::Input {
                let pi = self.pi_of[node.index()];
                if pi != NONE {
                    let pframe = if spec.holds_pi() { 0 } else { frame - 1 };
                    return Some((Var::Pi(pi as usize, pframe), want));
                }
                return None; // constrained/clock input
            }
            if cell.kind().is_flop() {
                // Value in `frame` is the state after cycle frame-1:
                // walk back over hold cycles to the defining capture.
                let mut k = frame;
                loop {
                    if k == 1 {
                        // Load state: scan bits are decision variables.
                        return self.scan_var(node).map(|si| (Var::Scan(si), want));
                    }
                    let domain = self
                        .model
                        .flop_index(node)
                        .map(|fi| self.model.flops()[fi].domain)?;
                    if spec.cycles()[k - 2].pulses_domain(domain) {
                        let next = match cell.kind() {
                            CellKind::Sdff | CellKind::SdffRl => {
                                let se = self.sim.good(k - 1, cell.inputs()[2]);
                                if se == Logic::One {
                                    cell.inputs()[3]
                                } else {
                                    cell.inputs()[0]
                                }
                            }
                            _ => cell.inputs()[0],
                        };
                        return self.backtrace_rec(spec, next, k - 1, want, depth + 1);
                    }
                    k -= 1;
                }
            }
            match cell.kind() {
                CellKind::Buf | CellKind::Output => {
                    self.backtrace_rec(spec, cell.inputs()[0], frame, want, depth + 1)
                }
                CellKind::Not => {
                    self.backtrace_rec(spec, cell.inputs()[0], frame, !want, depth + 1)
                }
                CellKind::And | CellKind::Nand | CellKind::Or | CellKind::Nor => {
                    let inv = matches!(cell.kind(), CellKind::Nand | CellKind::Nor);
                    let and_like = matches!(cell.kind(), CellKind::And | CellKind::Nand);
                    let goal = want ^ inv;
                    // Controlling goal: any single X input suffices —
                    // take the cheapest first. Non-controlling goal:
                    // every X input must eventually be justified —
                    // start with the hardest (fail fast). The selection
                    // loop reproduces the reference's stable sort
                    // (ties in pin order, reversed for descending).
                    let controlling_goal = goal != and_like;
                    let mut prev: Option<(u32, usize)> = None;
                    loop {
                        let mut best: Option<(u32, usize, CellId)> = None;
                        for (pos, &i) in cell.inputs().iter().enumerate() {
                            if self.sim.good(frame, i).is_definite() {
                                continue;
                            }
                            let key = (self.cc.cost(i, goal), pos);
                            let after_prev = match prev {
                                None => true,
                                Some(p) => {
                                    if controlling_goal {
                                        key > p
                                    } else {
                                        key < p
                                    }
                                }
                            };
                            if !after_prev {
                                continue;
                            }
                            let better = match best {
                                None => true,
                                Some((bc, bp, _)) => {
                                    if controlling_goal {
                                        key < (bc, bp)
                                    } else {
                                        key > (bc, bp)
                                    }
                                }
                            };
                            if better {
                                best = Some((key.0, key.1, i));
                            }
                        }
                        let (c, p, i) = best?;
                        prev = Some((c, p));
                        if let Some(hit) = self.backtrace_rec(spec, i, frame, goal, depth + 1) {
                            return Some(hit);
                        }
                    }
                }
                CellKind::Xor | CellKind::Xnor => {
                    let inv = cell.kind() == CellKind::Xnor;
                    let inner = want ^ inv;
                    let mut acc = false;
                    for &i in cell.inputs() {
                        if let Some(b) = self.sim.good(frame, i).to_bool() {
                            acc ^= b;
                        }
                    }
                    // Remaining Xs (other than the chosen one) are
                    // aimed at 0, so the chosen one carries the parity;
                    // candidates in ascending min-cost order.
                    let mut prev: Option<(u32, usize)> = None;
                    loop {
                        let mut best: Option<(u32, usize, CellId)> = None;
                        for (pos, &i) in cell.inputs().iter().enumerate() {
                            if self.sim.good(frame, i).is_definite() {
                                continue;
                            }
                            let key = (self.cc.cost(i, false).min(self.cc.cost(i, true)), pos);
                            if prev.is_some_and(|p| key <= p) {
                                continue;
                            }
                            if best.is_none_or(|(bc, bp, _)| key < (bc, bp)) {
                                best = Some((key.0, key.1, i));
                            }
                        }
                        let (c, p, i) = best?;
                        prev = Some((c, p));
                        if let Some(hit) =
                            self.backtrace_rec(spec, i, frame, inner ^ acc, depth + 1)
                        {
                            return Some(hit);
                        }
                    }
                }
                CellKind::Mux2 => {
                    let sel = cell.inputs()[0];
                    match self.sim.good(frame, sel).to_bool() {
                        Some(true) => {
                            self.backtrace_rec(spec, cell.inputs()[2], frame, want, depth + 1)
                        }
                        Some(false) => {
                            self.backtrace_rec(spec, cell.inputs()[1], frame, want, depth + 1)
                        }
                        None => {
                            // Try steering the select either way
                            // (cheaper side first), then the data legs.
                            let first = self.cc.cost(sel, true) < self.cc.cost(sel, false);
                            for (n, w) in [
                                (sel, first),
                                (sel, !first),
                                (cell.inputs()[1], want),
                                (cell.inputs()[2], want),
                            ] {
                                if let Some(hit) = self.backtrace_rec(spec, n, frame, w, depth + 1)
                                {
                                    return Some(hit);
                                }
                            }
                            None
                        }
                    }
                }
                _ => None, // ties, RAM, latch, clock gate
            }
        })();
        if result.is_none() {
            let slot = self.failed_slot(node, frame, want);
            self.failed[slot] = self.fgen;
        }
        result
    }
}

impl AtpgEngine for CompiledPodem<'_, '_> {
    fn run(
        &mut self,
        spec: &FrameSpec,
        obs: &Observability,
        fault: Fault,
        backtrack_limit: usize,
    ) -> PodemOutcome {
        CompiledPodem::run(self, spec, obs, fault, backtrack_limit)
    }

    fn engine_name(&self) -> &'static str {
        "compiled"
    }

    fn kernel_stats(&self) -> AtpgKernelStats {
        AtpgKernelStats {
            decisions: self.decisions,
            backtracks: self.backtracks,
            events: self.sim.events(),
            incremental_resims: self.sim.incremental_resims(),
            full_resims: self.sim.full_resims(),
            seeded_sims: self.sim.seeded_sims(),
        }
    }
}
