//! ASCII waveform rendering — how this workspace reprints the paper's
//! Figure 2 and Figure 4 in a terminal.

use crate::{Time, Trace};
use occ_netlist::{CellId, Logic};

/// Options controlling ASCII waveform rendering.
#[derive(Debug, Clone)]
pub struct AsciiOptions {
    /// Start of the rendered window (inclusive).
    pub from: Time,
    /// End of the rendered window (exclusive).
    pub to: Time,
    /// Picoseconds represented by one character column.
    pub resolution: Time,
}

impl AsciiOptions {
    /// A window `[from, to)` sampled every `resolution` ps.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or the resolution is zero.
    pub fn window(from: Time, to: Time, resolution: Time) -> Self {
        assert!(to > from, "empty render window");
        assert!(resolution > 0, "resolution must be positive");
        AsciiOptions {
            from,
            to,
            resolution,
        }
    }
}

/// Renders the given signals of a trace as one ASCII line each.
///
/// Legend: `_` low, `▔` high, `x` unknown, `z` high-impedance; a column
/// where the value changes is drawn with the *new* value so edges align
/// with their sample column.
///
/// # Examples
///
/// ```
/// use occ_netlist::{NetlistBuilder, Logic};
/// use occ_sim::{EventSim, DelayModel, Waveform, AsciiOptions, render_ascii};
///
/// # fn main() -> Result<(), occ_netlist::BuildError> {
/// let mut b = NetlistBuilder::new("t");
/// let clk = b.input("clk");
/// b.output("o", clk);
/// let nl = b.finish()?;
/// let mut sim = EventSim::new(&nl, DelayModel::default());
/// sim.watch(clk);
/// sim.drive(clk, Waveform::clock(100, 0, 400));
/// sim.run_until(400);
/// let art = render_ascii(sim.trace(), &[clk], &AsciiOptions::window(0, 400, 25));
/// assert!(art.contains("clk"));
/// # Ok(())
/// # }
/// ```
pub fn render_ascii(trace: &Trace, signals: &[CellId], opts: &AsciiOptions) -> String {
    let name_width = signals
        .iter()
        .map(|id| signal_name(trace, *id).len())
        .max()
        .unwrap_or(0)
        .max(4);

    let mut out = String::new();
    for &id in signals {
        let name = signal_name(trace, id);
        out.push_str(&format!("{name:<name_width$} "));
        let mut t = opts.from;
        while t < opts.to {
            out.push(glyph(trace.value_at(id, t)));
            t += opts.resolution;
        }
        out.push('\n');
    }
    // Time ruler.
    out.push_str(&format!("{:<name_width$} ", "t/ps"));
    let cols = ((opts.to - opts.from) / opts.resolution) as usize;
    let mut ruler = vec![b' '; cols];
    let mut t = opts.from;
    let mut col = 0usize;
    while col < cols {
        if col.is_multiple_of(10) {
            let label = t.to_string();
            for (k, ch) in label.bytes().enumerate() {
                if col + k < cols {
                    ruler[col + k] = ch;
                }
            }
        }
        col += 1;
        t += opts.resolution;
    }
    out.push_str(std::str::from_utf8(&ruler).expect("ascii ruler"));
    out.push('\n');
    out
}

fn signal_name(trace: &Trace, id: CellId) -> String {
    trace
        .signals()
        .find(|(sid, _)| *sid == id)
        .map_or_else(|| id.to_string(), |(_, n)| n.to_owned())
}

fn glyph(v: Logic) -> char {
    match v {
        Logic::Zero => '_',
        Logic::One => '▔',
        Logic::X => 'x',
        Logic::Z => 'z',
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_levels_and_ruler() {
        let id = CellId::from_index(0);
        let mut t = Trace::new();
        t.add_signal(id, "sig".into(), Logic::Zero);
        t.record(id, 50, Logic::Zero, Logic::One);
        t.set_end_time(100);
        let art = render_ascii(&t, &[id], &AsciiOptions::window(0, 100, 10));
        let line = art.lines().next().unwrap();
        assert!(line.starts_with("sig"));
        let wave: String = line.chars().skip_while(|c| *c != '_').collect();
        assert_eq!(wave.chars().filter(|&c| c == '_').count(), 5);
        assert_eq!(wave.chars().filter(|&c| c == '▔').count(), 5);
        assert!(art.contains("t/ps"));
    }

    #[test]
    #[should_panic(expected = "empty render window")]
    fn rejects_empty_window() {
        let _ = AsciiOptions::window(10, 10, 1);
    }
}
