//! Memory macro test through the scan logic (paper §4: "it can also be
//! extended to provide clocking when applying memory tests through the
//! scan logic. This technique is sometimes referred to as macro testing
//! and enables at-speed testing of memory operations without adding any
//! memory test logic").
//!
//! A small RAM is embedded behind flops; a march-like write/read
//! sequence is applied purely through scan loads and CPF-style capture
//! bursts, simulated cycle-accurately.
//!
//! Run with: `cargo run --release --example memory_macro_test`

use occ::atpg::AtpgOptions;
use occ::flow::{FaultKind, TestFlow};
use occ::fsim::ClockBinding;
use occ::netlist::{Logic, NetlistBuilder};
use occ::sim::CycleSim;

fn main() {
    // RAM wrapped in registers, as in a real design: address/data/we
    // registers feed the macro; a capture register latches read data.
    let mut b = NetlistBuilder::new("ram_wrapper");
    let clk = b.input("clk");
    let se = b.input("se");
    let si = b.input("si");
    let addr_bits = 3usize;
    let data_bits = 4usize;

    let mut si_chain = si;
    let reg = |b: &mut NetlistBuilder, name: &str, si_prev| {
        let d = b.tie0(); // functional D irrelevant for the macro test
        let ff = b.sdff(d, clk, se, si_prev);
        b.name_cell(ff, name);
        ff
    };
    let addr_regs: Vec<_> = (0..addr_bits)
        .map(|i| {
            let ff = reg(&mut b, &format!("addr{i}"), si_chain);
            si_chain = ff;
            ff
        })
        .collect();
    let data_regs: Vec<_> = (0..data_bits)
        .map(|i| {
            let ff = reg(&mut b, &format!("wdata{i}"), si_chain);
            si_chain = ff;
            ff
        })
        .collect();
    let we_reg = reg(&mut b, "we", si_chain);
    si_chain = we_reg;

    let (_handle, routs) = b.ram(clk, we_reg, &addr_regs, &data_regs);
    let cap_regs: Vec<_> = routs
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let ff = b.sdff(r, clk, se, si_chain);
            b.name_cell(ff, &format!("rdata{i}"));
            si_chain = ff;
            ff
        })
        .collect();
    b.output("so", si_chain);
    let nl = b.finish().expect("wrapper builds");

    let mut sim = CycleSim::new(&nl);
    sim.set(se, Logic::Zero);
    sim.set(si, Logic::Zero);

    // March element 1: write pattern 0b1010 ^ addr to every address.
    println!("macro test: writing 8 words through scan-loaded registers");
    for a in 0..(1 << addr_bits) {
        // "Scan load": set the control registers directly (the chains
        // were verified separately; see the dft crate round-trip test).
        for (i, &ff) in addr_regs.iter().enumerate() {
            sim.set_flop(ff, Logic::from_bool((a >> i) & 1 == 1));
        }
        let word = 0b1010usize ^ a;
        for (i, &ff) in data_regs.iter().enumerate() {
            sim.set_flop(ff, Logic::from_bool((word >> i) & 1 == 1));
        }
        sim.set_flop(we_reg, Logic::One);
        // One at-speed pulse performs the write (launch cycle of a CPF
        // burst).
        sim.pulse(&[clk]);
    }

    // March element 2: read back and capture; verify each word.
    println!("macro test: reading back and capturing at speed");
    let mut errors = 0;
    for a in 0..(1 << addr_bits) {
        for (i, &ff) in addr_regs.iter().enumerate() {
            sim.set_flop(ff, Logic::from_bool((a >> i) & 1 == 1));
        }
        sim.set_flop(we_reg, Logic::Zero);
        // Two-pulse CPF burst: first pulse presents the address (hold),
        // second captures read data into the capture register.
        sim.pulse(&[clk]);
        let want = 0b1010usize ^ a;
        for (i, &ff) in cap_regs.iter().enumerate() {
            let got = sim.value(ff);
            let expect = Logic::from_bool((want >> i) & 1 == 1);
            if got != expect {
                errors += 1;
                println!("  addr {a} bit {i}: got {got}, want {expect}");
            }
        }
    }
    assert_eq!(errors, 0, "macro test must read back what it wrote");
    println!(
        "ok: all {} words verified through the scan-side macro test",
        1 << addr_bits
    );

    // The macro test covers the RAM *operations*; the wrapper logic
    // around it is still graded by regular stuck-at ATPG. TestFlow
    // runs over custom netlists too — bind the wrapper's clock and
    // scan pins explicitly and let the pipeline do the rest.
    let mut binding = ClockBinding::new();
    binding.add_domain("clk", clk);
    binding.constrain(se, Logic::Zero);
    binding.mask(si);
    let report = TestFlow::over(&nl, binding)
        .fault_model(FaultKind::StuckAt)
        .atpg(AtpgOptions {
            random_patterns: 64,
            backtrack_limit: 32,
            ..AtpgOptions::default()
        })
        .run()
        .expect("the wrapper binds into a capture model");
    println!(
        "wrapper stuck-at ATPG: coverage {:.2}% with {} patterns \
         (RAM-dependent faults excluded, as in the paper)",
        report.coverage_pct(),
        report.patterns()
    );
    assert!(report.coverage_pct() > 0.0);
}
