//! The process-wide metrics registry and the `occ` metric catalog.
//!
//! Three typed primitives — [`Counter`], [`Gauge`], [`Histogram`] —
//! all plain atomics: bumping one on a hot path is a single relaxed
//! RMW, no lock, no allocation. Every metric is **pre-registered** in
//! a [`MetricsRegistry`] at construction; the registry owns the
//! descriptor (name, help, label set) and renders the whole catalog as
//! Prometheus text exposition for the daemon's `metrics` wire op.
//!
//! [`OccMetrics`] (reachable via [`metrics()`]) is the one catalog the
//! whole workspace feeds: the flow pushes kernel/ATPG deltas when a
//! run completes, the artifact cache bumps hit/miss/evict as they
//! happen, the daemon counts requests, errors, sheds and latencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (queue depth, resident
/// bytes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The bucket upper bounds (seconds) used by every latency/duration
/// histogram in the catalog: half a millisecond to ten seconds.
pub const DEFAULT_SECONDS_BOUNDS: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// A fixed-bucket histogram of seconds. Observation is bounded work
/// over a static bound table plus three relaxed atomic adds — no
/// allocation, no lock.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    /// Per-bin (non-cumulative) counts; the last bin is +Inf overflow.
    bins: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum kept in nanoseconds so it stays an atomic integer.
    sum_ns: AtomicU64,
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Self {
        Histogram {
            bounds,
            bins: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one observation, in seconds.
    pub fn observe(&self, seconds: f64) {
        let bin = self
            .bounds
            .iter()
            .position(|b| seconds <= *b)
            .unwrap_or(self.bounds.len());
        self.bins[bin].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let ns = if seconds.is_finite() && seconds > 0.0 {
            (seconds * 1e9) as u64
        } else {
            0
        };
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations in seconds.
    #[must_use]
    pub fn sum_seconds(&self) -> f64 {
        self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// The bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Cumulative bucket counts, one per bound plus the +Inf bucket
    /// last (Prometheus semantics).
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut acc = 0;
        self.bins
            .iter()
            .map(|b| {
                acc += b.load(Ordering::Relaxed);
                acc
            })
            .collect()
    }
}

#[derive(Debug, Clone, Copy)]
struct Desc {
    name: &'static str,
    help: &'static str,
    labels: &'static [(&'static str, &'static str)],
}

impl Desc {
    /// `name{k="v",...}` — the exposition/snapshot series key.
    fn series(&self) -> String {
        series_key(self.name, self.labels, None)
    }
}

fn series_key(name: &str, labels: &[(&str, &str)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return name.to_owned();
    }
    let mut out = String::with_capacity(name.len() + 16);
    out.push_str(name);
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{v}\"");
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Trims a float label/exposition value: `0.5` not `0.500000`, but
/// keeps at least one decimal so it still reads as a float.
fn trim_float(v: f64) -> String {
    let mut s = format!("{v:.6}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.push('0');
    }
    s
}

#[derive(Debug)]
enum Entry {
    Counter(Desc, Arc<Counter>),
    Gauge(Desc, Arc<Gauge>),
    Histogram(Desc, Arc<Histogram>),
}

impl Entry {
    fn desc(&self) -> &Desc {
        match self {
            Entry::Counter(d, _) | Entry::Gauge(d, _) | Entry::Histogram(d, _) => d,
        }
    }
}

/// An ordered registry of pre-registered metrics. Registration happens
/// once at startup (under a lock); reads and renders never block a
/// writer — the handles are plain atomics the registry merely lists.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers a counter and returns its handle.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &'static [(&'static str, &'static str)],
    ) -> Arc<Counter> {
        let handle = Arc::new(Counter::default());
        self.entries
            .lock()
            .expect("metrics registry poisoned")
            .push(Entry::Counter(
                Desc { name, help, labels },
                Arc::clone(&handle),
            ));
        handle
    }

    /// Registers a gauge and returns its handle.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &'static [(&'static str, &'static str)],
    ) -> Arc<Gauge> {
        let handle = Arc::new(Gauge::default());
        self.entries
            .lock()
            .expect("metrics registry poisoned")
            .push(Entry::Gauge(
                Desc { name, help, labels },
                Arc::clone(&handle),
            ));
        handle
    }

    /// Registers a histogram with the given bucket bounds (seconds).
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &'static [(&'static str, &'static str)],
        bounds: &'static [f64],
    ) -> Arc<Histogram> {
        let handle = Arc::new(Histogram::new(bounds));
        self.entries
            .lock()
            .expect("metrics registry poisoned")
            .push(Entry::Histogram(
                Desc { name, help, labels },
                Arc::clone(&handle),
            ));
        handle
    }

    /// Renders the whole catalog as Prometheus text exposition
    /// (`text/plain; version=0.0.4`): `# HELP` / `# TYPE` once per
    /// family, series in registration order.
    #[must_use]
    pub fn render(&self) -> String {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut out = String::with_capacity(entries.len() * 64);
        let mut last_family = "";
        for entry in entries.iter() {
            let d = entry.desc();
            if d.name != last_family {
                let kind = match entry {
                    Entry::Counter(..) => "counter",
                    Entry::Gauge(..) => "gauge",
                    Entry::Histogram(..) => "histogram",
                };
                let _ = writeln!(out, "# HELP {} {}", d.name, d.help);
                let _ = writeln!(out, "# TYPE {} {kind}", d.name);
                last_family = d.name;
            }
            match entry {
                Entry::Counter(_, c) => {
                    let _ = writeln!(out, "{} {}", d.series(), c.get());
                }
                Entry::Gauge(_, g) => {
                    let _ = writeln!(out, "{} {}", d.series(), g.get());
                }
                Entry::Histogram(_, h) => {
                    let cumulative = h.cumulative_buckets();
                    for (i, acc) in cumulative.iter().enumerate() {
                        let le = if i < h.bounds().len() {
                            trim_float(h.bounds()[i])
                        } else {
                            "+Inf".to_owned()
                        };
                        let key = series_key(
                            &format!("{}_bucket", d.name),
                            unstatic(d.labels),
                            Some(&le),
                        );
                        let _ = writeln!(out, "{key} {acc}");
                    }
                    let _ = writeln!(
                        out,
                        "{} {}",
                        series_key(&format!("{}_sum", d.name), unstatic(d.labels), None),
                        trim_float(h.sum_seconds()),
                    );
                    let _ = writeln!(
                        out,
                        "{} {}",
                        series_key(&format!("{}_count", d.name), unstatic(d.labels), None),
                        h.count(),
                    );
                }
            }
        }
        out
    }

    /// A point-in-time snapshot of every series as `key -> value`.
    /// Histograms contribute `_bucket{...,le=...}`, `_sum` and
    /// `_count` series. Used by the delta-equality tests.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut map = BTreeMap::new();
        for entry in entries.iter() {
            let d = entry.desc();
            match entry {
                Entry::Counter(_, c) => {
                    map.insert(d.series(), c.get() as f64);
                }
                Entry::Gauge(_, g) => {
                    map.insert(d.series(), g.get() as f64);
                }
                Entry::Histogram(_, h) => {
                    let cumulative = h.cumulative_buckets();
                    for (i, acc) in cumulative.iter().enumerate() {
                        let le = if i < h.bounds().len() {
                            trim_float(h.bounds()[i])
                        } else {
                            "+Inf".to_owned()
                        };
                        map.insert(
                            series_key(
                                &format!("{}_bucket", d.name),
                                unstatic(d.labels),
                                Some(&le),
                            ),
                            *acc as f64,
                        );
                    }
                    map.insert(
                        series_key(&format!("{}_sum", d.name), unstatic(d.labels), None),
                        h.sum_seconds(),
                    );
                    map.insert(
                        series_key(&format!("{}_count", d.name), unstatic(d.labels), None),
                        h.count() as f64,
                    );
                }
            }
        }
        MetricsSnapshot { series: map }
    }
}

/// Reborrows a `'static` label slice at a shorter lifetime (the
/// `series_key` helper takes ordinary slices so callers can also pass
/// locals).
fn unstatic<'a>(labels: &'a [(&'static str, &'static str)]) -> &'a [(&'a str, &'a str)] {
    labels
}

/// A point-in-time value map of every registered series.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `series key -> value`, sorted by key.
    pub series: BTreeMap<String, f64>,
}

impl MetricsSnapshot {
    /// The value of one series (0.0 when absent).
    #[must_use]
    pub fn get(&self, key: &str) -> f64 {
        self.series.get(key).copied().unwrap_or(0.0)
    }

    /// `self - earlier`, keeping only series that changed.
    #[must_use]
    pub fn delta(&self, earlier: &MetricsSnapshot) -> BTreeMap<String, f64> {
        self.series
            .iter()
            .filter_map(|(k, v)| {
                let d = v - earlier.get(k);
                (d != 0.0).then(|| (k.clone(), d))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// The occ metric catalog.
// ---------------------------------------------------------------------

/// Artifact-cache kind labels, in [`crate::metrics()`] array order
/// (matching the cache's own counter indexing).
pub const CACHE_KINDS: [&str; 3] = ["design", "procedures", "delays"];

/// Wire-protocol operations the daemon counts.
pub const OPS: [&str; 7] = [
    "ping", "stats", "health", "metrics", "flow", "analyze", "shutdown",
];

/// Protocol error codes the daemon tallies.
pub const ERROR_CODES: [&str; 10] = [
    "bad-request",
    "unsupported-clocking",
    "lint-denied",
    "model-error",
    "flow-error",
    "cancelled",
    "deadline-exceeded",
    "overloaded",
    "shutting-down",
    "internal",
];

/// Flow stage labels (matching `occ_flow::Stage::label`).
pub const STAGE_LABELS: [&str; 8] = [
    "bind-model",
    "procedures",
    "fault-universe",
    "lint",
    "atpg",
    "pattern-source",
    "classify",
    "timing",
];

/// Admission-shed reasons: global queue full vs per-connection cap.
pub const SHED_REASONS: [&str; 2] = ["queue", "connection"];

/// Cooperative-cancellation causes.
pub const CANCEL_CAUSES: [&str; 2] = ["deadline", "cancelled"];

const KIND_LABELS: [&[(&str, &str)]; 3] = [
    &[("kind", "design")],
    &[("kind", "procedures")],
    &[("kind", "delays")],
];
const OP_LABELS: [&[(&str, &str)]; 7] = [
    &[("op", "ping")],
    &[("op", "stats")],
    &[("op", "health")],
    &[("op", "metrics")],
    &[("op", "flow")],
    &[("op", "analyze")],
    &[("op", "shutdown")],
];
const CODE_LABELS: [&[(&str, &str)]; 10] = [
    &[("code", "bad-request")],
    &[("code", "unsupported-clocking")],
    &[("code", "lint-denied")],
    &[("code", "model-error")],
    &[("code", "flow-error")],
    &[("code", "cancelled")],
    &[("code", "deadline-exceeded")],
    &[("code", "overloaded")],
    &[("code", "shutting-down")],
    &[("code", "internal")],
];
const STAGE_LABEL_SETS: [&[(&str, &str)]; 8] = [
    &[("stage", "bind-model")],
    &[("stage", "procedures")],
    &[("stage", "fault-universe")],
    &[("stage", "lint")],
    &[("stage", "atpg")],
    &[("stage", "pattern-source")],
    &[("stage", "classify")],
    &[("stage", "timing")],
];
const SHED_LABELS: [&[(&str, &str)]; 2] = [&[("reason", "queue")], &[("reason", "connection")]];
const CAUSE_LABELS: [&[(&str, &str)]; 2] = [&[("cause", "deadline")], &[("cause", "cancelled")]];

/// The full `occ` metric catalog, pre-registered in one registry.
/// Reached through [`metrics()`]; see the README's Observability
/// section for the per-metric table.
#[derive(Debug)]
#[allow(clippy::struct_field_names)]
pub struct OccMetrics {
    /// The registry listing every handle below, in catalog order.
    pub registry: MetricsRegistry,

    /// Faults graded by the fault-sim kernel.
    pub kernel_faults_graded: Arc<Counter>,
    /// Faults skipped by observability-cone pruning.
    pub kernel_cone_pruned: Arc<Counter>,
    /// Events propagated by the fault-sim kernel.
    pub kernel_events: Arc<Counter>,

    /// PODEM decisions.
    pub atpg_decisions: Arc<Counter>,
    /// PODEM backtracks.
    pub atpg_backtracks: Arc<Counter>,
    /// ATPG value-engine events.
    pub atpg_events: Arc<Counter>,
    /// PODEM searches attempted.
    pub atpg_podem_calls: Arc<Counter>,
    /// PODEM searches that produced a test.
    pub atpg_tests_found: Arc<Counter>,

    /// Cache hits by artifact kind ([`CACHE_KINDS`] order).
    pub cache_hits: [Arc<Counter>; 3],
    /// Cache misses (builds) by artifact kind.
    pub cache_misses: [Arc<Counter>; 3],
    /// Cache evictions by artifact kind.
    pub cache_evictions: [Arc<Counter>; 3],
    /// Resident cache bytes (refreshed when stats/metrics are read).
    pub cache_resident_bytes: Arc<Gauge>,
    /// Ready cache entries (refreshed when stats/metrics are read).
    pub cache_entries: Arc<Gauge>,

    /// Daemon jobs queued or running.
    pub jobs_pending: Arc<Gauge>,
    /// Jobs shed by admission control ([`SHED_REASONS`] order).
    pub admission_shed: [Arc<Counter>; 2],
    /// Jobs cooperatively cancelled ([`CANCEL_CAUSES`] order).
    pub cancellations: [Arc<Counter>; 2],
    /// Requests handled, by op ([`OPS`] order).
    pub requests: [Arc<Counter>; 7],
    /// Error responses, by code ([`ERROR_CODES`] order).
    pub request_errors: [Arc<Counter>; 10],
    /// Request latency by op ([`OPS`] order), seconds.
    pub request_latency: [Arc<Histogram>; 7],
    /// Flow stage wall time by stage ([`STAGE_LABELS`] order), seconds.
    pub flow_stage_seconds: [Arc<Histogram>; 8],
}

impl OccMetrics {
    fn new() -> Self {
        let r = MetricsRegistry::new();
        let counter_set = |name, help, labels: &[&'static [(&'static str, &'static str)]]| {
            labels
                .iter()
                .map(|l| r.counter(name, help, l))
                .collect::<Vec<_>>()
        };
        let kernel_faults_graded = r.counter(
            "occ_kernel_faults_graded_total",
            "Faults graded by the fault-simulation kernel",
            &[],
        );
        let kernel_cone_pruned = r.counter(
            "occ_kernel_cone_pruned_total",
            "Faults skipped by observability-cone pruning",
            &[],
        );
        let kernel_events = r.counter(
            "occ_kernel_events_total",
            "Events propagated by the fault-simulation kernel",
            &[],
        );
        let atpg_decisions = r.counter(
            "occ_atpg_decisions_total",
            "PODEM decisions across all searches",
            &[],
        );
        let atpg_backtracks = r.counter("occ_atpg_backtracks_total", "PODEM backtracks", &[]);
        let atpg_events = r.counter("occ_atpg_events_total", "ATPG value-engine events", &[]);
        let atpg_podem_calls = r.counter(
            "occ_atpg_podem_calls_total",
            "PODEM searches attempted",
            &[],
        );
        let atpg_tests_found = r.counter(
            "occ_atpg_tests_found_total",
            "PODEM searches that produced a test",
            &[],
        );
        let cache_hits = counter_set(
            "occ_cache_hits_total",
            "Artifact-cache hits by kind",
            &KIND_LABELS,
        );
        let cache_misses = counter_set(
            "occ_cache_misses_total",
            "Artifact-cache misses (builds) by kind",
            &KIND_LABELS,
        );
        let cache_evictions = counter_set(
            "occ_cache_evictions_total",
            "Artifact-cache evictions by kind",
            &KIND_LABELS,
        );
        let cache_resident_bytes = r.gauge(
            "occ_cache_resident_bytes",
            "Approximate resident artifact-cache bytes",
            &[],
        );
        let cache_entries = r.gauge("occ_cache_entries", "Ready artifact-cache entries", &[]);
        let jobs_pending = r.gauge("occ_jobs_pending", "Daemon jobs queued or running", &[]);
        let admission_shed = counter_set(
            "occ_admission_shed_total",
            "Jobs shed by admission control, by reason",
            &SHED_LABELS,
        );
        let cancellations = counter_set(
            "occ_cancellations_total",
            "Jobs cooperatively cancelled, by cause",
            &CAUSE_LABELS,
        );
        let requests = counter_set("occ_requests_total", "Requests handled, by op", &OP_LABELS);
        let request_errors = counter_set(
            "occ_request_errors_total",
            "Error responses, by code",
            &CODE_LABELS,
        );
        let request_latency: Vec<Arc<Histogram>> = OP_LABELS
            .iter()
            .map(|l| {
                r.histogram(
                    "occ_request_latency_seconds",
                    "Request latency by op (admission to response)",
                    l,
                    DEFAULT_SECONDS_BOUNDS,
                )
            })
            .collect();
        let flow_stage_seconds: Vec<Arc<Histogram>> = STAGE_LABEL_SETS
            .iter()
            .map(|l| {
                r.histogram(
                    "occ_flow_stage_seconds",
                    "Flow stage wall time, by stage",
                    l,
                    DEFAULT_SECONDS_BOUNDS,
                )
            })
            .collect();
        let arr3 = |mut v: Vec<Arc<Counter>>| -> [Arc<Counter>; 3] {
            [v.remove(0), v.remove(0), v.remove(0)]
        };
        let arr2 = |mut v: Vec<Arc<Counter>>| -> [Arc<Counter>; 2] { [v.remove(0), v.remove(0)] };
        OccMetrics {
            kernel_faults_graded,
            kernel_cone_pruned,
            kernel_events,
            atpg_decisions,
            atpg_backtracks,
            atpg_events,
            atpg_podem_calls,
            atpg_tests_found,
            cache_hits: arr3(cache_hits),
            cache_misses: arr3(cache_misses),
            cache_evictions: arr3(cache_evictions),
            cache_resident_bytes,
            cache_entries,
            jobs_pending,
            admission_shed: arr2(admission_shed),
            cancellations: arr2(cancellations),
            requests: requests.try_into().expect("7 ops registered"),
            request_errors: request_errors.try_into().expect("10 codes registered"),
            request_latency: request_latency.try_into().expect("7 ops registered"),
            flow_stage_seconds: flow_stage_seconds.try_into().expect("8 stages registered"),
            registry: r,
        }
    }

    /// The request counter for a wire op, by label.
    #[must_use]
    pub fn request(&self, op: &str) -> Option<&Counter> {
        OPS.iter()
            .position(|&o| o == op)
            .map(|i| self.requests[i].as_ref())
    }

    /// The error counter for a protocol code, by label.
    #[must_use]
    pub fn request_error(&self, code: &str) -> Option<&Counter> {
        ERROR_CODES
            .iter()
            .position(|&c| c == code)
            .map(|i| self.request_errors[i].as_ref())
    }

    /// The latency histogram for a wire op, by label.
    #[must_use]
    pub fn latency(&self, op: &str) -> Option<&Histogram> {
        OPS.iter()
            .position(|&o| o == op)
            .map(|i| self.request_latency[i].as_ref())
    }

    /// The stage-duration histogram for a flow stage label.
    #[must_use]
    pub fn stage(&self, label: &str) -> Option<&Histogram> {
        STAGE_LABELS
            .iter()
            .position(|&s| s == label)
            .map(|i| self.flow_stage_seconds[i].as_ref())
    }
}

static METRICS: OnceLock<OccMetrics> = OnceLock::new();

/// The process-wide metric catalog (created on first use).
#[must_use]
pub fn metrics() -> &'static OccMetrics {
    METRICS.get_or_init(OccMetrics::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_count_correctly() {
        let h = Histogram::new(&[0.001, 0.01, 0.1]);
        h.observe(0.0005); // bin 0
        h.observe(0.001); // bin 0 (le is inclusive)
        h.observe(0.05); // bin 2
        h.observe(5.0); // +Inf bin
        assert_eq!(h.count(), 4);
        assert_eq!(h.cumulative_buckets(), vec![2, 2, 3, 4]);
        assert!((h.sum_seconds() - 5.0515).abs() < 1e-6);
    }

    #[test]
    fn exposition_is_prometheus_shaped() {
        let r = MetricsRegistry::new();
        let c = r.counter("t_total", "a counter", &[("kind", "x")]);
        c.add(3);
        let g = r.gauge("t_gauge", "a gauge", &[]);
        g.set(-2);
        let h = r.histogram("t_seconds", "a histogram", &[], &[0.5, 1.0]);
        h.observe(0.7);
        let text = r.render();
        assert!(text.contains("# HELP t_total a counter"));
        assert!(text.contains("# TYPE t_total counter"));
        assert!(text.contains("t_total{kind=\"x\"} 3"));
        assert!(text.contains("t_gauge -2"));
        assert!(text.contains("t_seconds_bucket{le=\"0.5\"} 0"));
        assert!(text.contains("t_seconds_bucket{le=\"1.0\"} 1"));
        assert!(text.contains("t_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("t_seconds_sum 0.7"));
        assert!(text.contains("t_seconds_count 1"));
    }

    #[test]
    fn help_and_type_emitted_once_per_family() {
        let r = MetricsRegistry::new();
        let _a = r.counter("fam_total", "family", &[("kind", "a")]);
        let _b = r.counter("fam_total", "family", &[("kind", "b")]);
        let text = r.render();
        assert_eq!(text.matches("# HELP fam_total").count(), 1);
        assert_eq!(text.matches("# TYPE fam_total").count(), 1);
        assert_eq!(text.matches("fam_total{").count(), 2);
    }

    #[test]
    fn snapshot_deltas_ignore_unchanged_series() {
        let r = MetricsRegistry::new();
        let a = r.counter("a_total", "a", &[]);
        let _b = r.counter("b_total", "b", &[]);
        let before = r.snapshot();
        a.add(2);
        let after = r.snapshot();
        let delta = after.delta(&before);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta.get("a_total"), Some(&2.0));
    }

    #[test]
    fn global_catalog_has_every_family() {
        let m = metrics();
        let text = m.registry.render();
        for family in [
            "occ_kernel_faults_graded_total",
            "occ_kernel_cone_pruned_total",
            "occ_kernel_events_total",
            "occ_atpg_decisions_total",
            "occ_atpg_backtracks_total",
            "occ_atpg_events_total",
            "occ_atpg_podem_calls_total",
            "occ_atpg_tests_found_total",
            "occ_cache_hits_total",
            "occ_cache_misses_total",
            "occ_cache_evictions_total",
            "occ_cache_resident_bytes",
            "occ_cache_entries",
            "occ_jobs_pending",
            "occ_admission_shed_total",
            "occ_cancellations_total",
            "occ_requests_total",
            "occ_request_errors_total",
            "occ_request_latency_seconds",
            "occ_flow_stage_seconds",
        ] {
            assert!(text.contains(family), "missing {family}");
        }
        assert!(m.request("flow").is_some());
        assert!(m.request("warp").is_none());
        assert!(m.request_error("overloaded").is_some());
        assert!(m.stage("atpg").is_some());
        assert!(m.latency("metrics").is_some());
    }
}
