//! Scan-load slot ↔ (chain, cycle) coordinates.
//!
//! A [`Pattern`](occ_fsim::Pattern)'s `scan_load` is indexed in the
//! capture model's scan order; the decompressor and the compactors
//! address bits by chain and shift cycle. This map translates both
//! directions for the shift protocol [`occ_dft::ScanChains`] defines:
//! `chains()[c][0]` is the head flop (next to scan-in), the tail
//! drives scan-out, and with `L` shift cycles the bit shifted first
//! ends up in the tail.

use occ_dft::ScanChains;
use occ_fsim::CaptureModel;
use std::collections::HashMap;

/// Slot coordinates for every scan flop of a model over a chain set.
#[derive(Debug, Clone)]
pub struct ChainMap {
    n_chains: usize,
    shift_len: usize,
    /// Per scan-load slot: `(chain, position-from-head)`.
    coord: Vec<Option<(usize, usize)>>,
    chain_len: Vec<usize>,
}

impl ChainMap {
    /// Builds the map; slots whose flop is not on any chain (or chain
    /// cells that are not scan flops in the model) stay unmapped.
    pub fn new(model: &CaptureModel<'_>, chains: &ScanChains) -> Self {
        let mut slot_of_cell = HashMap::new();
        for (slot, &fi) in model.scan_flops().iter().enumerate() {
            slot_of_cell.insert(model.flops()[fi as usize].cell, slot);
        }
        let mut coord = vec![None; model.scan_flops().len()];
        for (c, chain) in chains.chains().iter().enumerate() {
            for (pos, cell) in chain.iter().enumerate() {
                if let Some(&slot) = slot_of_cell.get(cell) {
                    coord[slot] = Some((c, pos));
                }
            }
        }
        ChainMap {
            n_chains: chains.chains().len(),
            shift_len: chains.max_chain_len(),
            coord,
            chain_len: chains.chains().iter().map(Vec::len).collect(),
        }
    }

    /// Number of chains.
    pub fn chains(&self) -> usize {
        self.n_chains
    }

    /// Shift cycles per load (longest chain).
    pub fn shift_len(&self) -> usize {
        self.shift_len
    }

    /// Number of scan-load slots (model scan flops).
    pub fn slots(&self) -> usize {
        self.coord.len()
    }

    /// Slots with no chain coordinate (should be zero on a well-formed
    /// scan design — reported so callers can refuse to compress).
    pub fn unmapped(&self) -> usize {
        self.coord.iter().filter(|c| c.is_none()).count()
    }

    /// Load-side coordinate: the `(chain, shift-cycle)` whose injected
    /// bit ends up in this slot's flop after a full load. The head flop
    /// receives the **last** shifted bit.
    pub fn load_coord(&self, slot: usize) -> Option<(usize, usize)> {
        self.coord[slot].map(|(c, pos)| (c, self.shift_len - 1 - pos))
    }

    /// Unload-side coordinate: the `(chain, unload-cycle)` at which
    /// this slot's captured value appears on the chain's scan-out. The
    /// tail flop unloads first; short chains stop contributing after
    /// `len` cycles.
    pub fn unload_coord(&self, slot: usize) -> Option<(usize, usize)> {
        self.coord[slot].map(|(c, pos)| (c, self.chain_len[c] - 1 - pos))
    }
}
