//! Offline stand-in for the `criterion` bench harness.
//!
//! The workspace builds with no network access, so the subset of the
//! criterion 0.5 API used by `crates/bench/benches/*` is provided here:
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::iter` and `black_box`. Instead of criterion's statistical
//! machinery it takes `sample_size` wall-clock samples after a warmup
//! pass and reports min/median/mean per iteration — enough to compare
//! engines (e.g. serial vs sharded fault simulation) on one machine.
//!
//! `cargo bench -- <substring>` filters benchmarks by name, like the
//! real harness.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier so the optimizer cannot delete the benched work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collects timing samples for one benchmark routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`: one untimed warmup call, then `sample_size`
    /// timed samples. Slow routines (>50 ms) get one call per sample;
    /// fast ones are batched so a sample is long enough to measure.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed();

        let target = Duration::from_millis(10);
        let batch = if once >= Duration::from_millis(50) {
            1
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        self.iters_per_sample = batch;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{name:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            per_iter.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Top-level harness state: the name filter from `cargo bench -- <f>`.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench`; anything else is a name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(&self.filter, &id.into(), sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&self.criterion.filter, &full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    filter: &Option<String>,
    name: &str,
    sample_size: usize,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    bencher.report(name);
}

/// Mirrors criterion's macro: defines a function that runs each target
/// against a shared `Criterion` instance.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors criterion's macro: the bench entry point (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
