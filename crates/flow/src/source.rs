//! Pattern sources: how test stimulus reaches the scan chains.
//!
//! The paper's Table 1 is measured under external deterministic ATPG,
//! but the device it describes delivers its patterns through embedded
//! deterministic test (357 chains behind 36 channels) and the same
//! clocking question arises under LBIST. [`PatternSource`] makes the
//! delivery/observation architecture a first-class flow axis next to
//! the clocking mode, so the 4×3 matrix (clocking × source) comes out
//! of one [`TestFlow`](crate::TestFlow) sweep.

use occ_bist::BistConfig;
use occ_dft::EdtConfig;

/// How patterns are delivered to (and responses observed from) the
/// scan chains.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum PatternSource {
    /// External deterministic ATPG: every chain is driven and observed
    /// directly by the tester (the paper's own setup). The default —
    /// flows and reports are byte-identical to before this axis
    /// existed.
    #[default]
    ExternalAtpg,
    /// Embedded deterministic test: ATPG care bits are solved into
    /// channel data by the EDT ring generator, loads are whatever the
    /// decompressor expands, unloads are observed through the XOR
    /// space compactor (X-poisoning and cancellation modeled). A
    /// config with `chains == 0` asks the flow to derive the geometry
    /// from the SOC's actual chains.
    Edt(EdtConfig),
    /// At-speed logic BIST: PRPG-filled pseudo-random loads, responses
    /// compacted into a MISR signature; a fault counts as detected iff
    /// its response difference survives compaction (aliasing and
    /// X-masking are modeled and reported, and `occ-lint`'s `L008`
    /// X-source findings invalidate the signature).
    Lbist(BistConfig),
}

impl PatternSource {
    /// Stable machine-readable label (`external` / `edt` / `lbist`).
    pub fn label(&self) -> &'static str {
        match self {
            PatternSource::ExternalAtpg => "external",
            PatternSource::Edt(_) => "edt",
            PatternSource::Lbist(_) => "lbist",
        }
    }
}

/// The pattern-source stage's referee accounting as carried by a
/// [`FlowReport`](crate::FlowReport). `None` on external-ATPG flows —
/// their reports are unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternSourceBlock {
    /// Source label (`edt` / `lbist`).
    pub source: String,
    /// Faults the uncompacted PPSFP kernel detected on the applied
    /// patterns — the bound every compacted claim is refereed against.
    pub kernel_detected: usize,
    /// Faults still detected under compacted observation (these are
    /// what the coverage numbers count).
    pub source_detected: usize,
    /// Kernel detections lost to MISR aliasing (LBIST only).
    pub aliased: usize,
    /// Kernel detections lost to XOR cancellation in the space
    /// compactor (EDT only).
    pub compactor_masked: usize,
    /// Kernel detections lost to X-poisoned compactor outputs.
    pub x_masked: usize,
    /// Predicted good-machine MISR signature (LBIST; `None` when an X
    /// reached the register or for EDT).
    pub signature: Option<u64>,
    /// Whether the signature is trustworthy: predictable and no `L008`
    /// X-source in the observation cone (LBIST; `None` for EDT).
    pub signature_valid: Option<bool>,
    /// `L008` X-source findings consumed for X-bounding.
    pub x_sources: usize,
    /// Input-side compression ratio, internal bits per external bit
    /// (EDT; 0 for LBIST).
    pub compression_ratio: f64,
    /// Unencodable ATPG cubes split for re-encoding (EDT).
    pub encode_splits: usize,
    /// Cubes dropped as undeliverable (EDT).
    pub dropped_cubes: usize,
}
