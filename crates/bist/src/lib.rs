//! # occ-bist — at-speed logic BIST and EDT-compressed delivery
//!
//! The paper evaluates its clocking modes only under external
//! deterministic ATPG patterns, but the device it describes loads 357
//! chains through 36 channels of embedded deterministic test, and the
//! same at-speed clocking question arises under PRPG/MISR self-test
//! ("At-Speed Logic BIST for IP Cores"). This crate supplies both
//! alternative **pattern sources** as first-class flow citizens:
//!
//! * [`Prpg`] — an LFSR + phase-shifter pseudo-random pattern
//!   generator filling scan loads deterministically from a seed;
//! * [`Misr`] / [`MisrBatch`] — a multiple-input signature register
//!   over GF(2): the scalar form predicts the good-machine signature
//!   (X-poisoning tracked explicitly), the bit-sliced form compacts
//!   64 per-pattern fault-difference streams at once;
//! * [`run_lbist`] — the LBIST campaign: PRPG patterns graded through
//!   the PPSFP kernel's [`occ_fsim::FaultSim::detect_response`], where
//!   a fault counts as BIST-detected **iff its response difference
//!   survives MISR compaction** — aliasing is modeled, not assumed
//!   away, and faulty-only X bits mask rather than detect;
//! * [`EdtFill`] — an [`occ_atpg::PatternFill`] implementation driving
//!   the [`occ_dft::EdtCodec`]: ATPG care bits go through `encode`
//!   (splitting unencodable cubes), delivered loads through `expand`;
//! * [`regrade_edt`] — compacted-observation grading: every detection
//!   is re-checked through the XOR space compactor, misses are
//!   explained as compactor masking or X-blocking;
//! * [`x_source_count`] — the X-bounding hook: `occ-lint`'s `L008`
//!   findings invalidate a signature instead of silently corrupting
//!   it.
//!
//! The referee contract shared by both sources: compacted-observation
//! detection masks are always a subset of the uncompacted kernel
//! masks, and every miss is counted under exactly one explanation
//! (MISR aliasing, compactor XOR masking, or X-masking).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chainmap;
mod edtfill;
mod lbist;
mod misr;
mod prpg;

pub use chainmap::ChainMap;
pub use edtfill::{regrade_edt, EdtFill, EdtGradeReport};
pub use lbist::{run_lbist, BistConfig, LbistOutcome, LbistReport};
pub use misr::{Misr, MisrBatch};
pub use prpg::Prpg;

/// Counts the `L008` (`x-source`) findings in a lint diagnostic list —
/// the X-bounding input to [`run_lbist`]: any unbounded X-source
/// reaching the MISR observation cone makes the predicted signature
/// untrustworthy, so the outcome's `signature_valid` goes false rather
/// than letting an X corrupt the signature silently.
pub fn x_source_count(diagnostics: &[occ_lint::Diagnostic]) -> usize {
    diagnostics
        .iter()
        .filter(|d| d.rule == occ_lint::RuleId::XSource)
        .count()
}

/// Deterministic PRNG for hardware-structure choice (taps, phase
/// shifters) — same construction the EDT codec uses, kept private
/// there.
pub(crate) struct SplitMix(u64);

impl SplitMix {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix(seed)
    }
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}
