//! Incremental netlist construction with deferred validation.

use crate::error::{BuildError, ValidateError};
use crate::netlist::Levelization;
use crate::{Cell, CellId, CellKind, Netlist};
use std::collections::VecDeque;

/// Sentinel for a not-yet-connected pin (patched via
/// [`NetlistBuilder::set_input`] before [`NetlistBuilder::finish`]).
const UNCONNECTED: CellId = CellId::from_raw(u32::MAX);

/// Builder for [`Netlist`], providing one constructor per primitive plus
/// generic escape hatches.
///
/// Sequential feedback loops are built with the `*_uninit` constructors
/// followed by [`NetlistBuilder::set_flop_d`]:
///
/// ```
/// use occ_netlist::NetlistBuilder;
/// # fn main() -> Result<(), occ_netlist::BuildError> {
/// let mut b = NetlistBuilder::new("toggle");
/// let clk = b.input("clk");
/// let ff = b.dff_uninit(clk);
/// let nd = b.not(ff);
/// b.set_flop_d(ff, nd);
/// b.output("q", ff);
/// let nl = b.finish()?;
/// assert_eq!(nl.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: Box<str>,
    cells: Vec<Cell>,
    primary_inputs: Vec<CellId>,
    primary_outputs: Vec<CellId>,
}

impl NetlistBuilder {
    /// Starts a new design with the given name.
    pub fn new(name: &str) -> Self {
        NetlistBuilder {
            name: name.into(),
            cells: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
        }
    }

    /// Re-opens a finished netlist for transformation (scan insertion,
    /// CPF attachment). Cell ids are preserved.
    pub fn from_netlist(netlist: &Netlist) -> Self {
        let mut b = NetlistBuilder::new(netlist.name());
        for (_, cell) in netlist.iter() {
            let id = b.push(cell.kind(), cell.inputs().to_vec());
            if let Some(n) = cell.name() {
                b.name_cell(id, n);
            }
        }
        b
    }

    /// Replaces the kind and inputs of an existing cell (keeps its name).
    /// Primary input/output bookkeeping follows the change.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn replace_cell(&mut self, id: CellId, kind: CellKind, inputs: Vec<CellId>) {
        let old = &self.cells[id.index()];
        let was_input = old.kind() == CellKind::Input;
        let was_output = old.kind() == CellKind::Output;
        let name = old.name().map(Into::into);
        self.cells[id.index()] = Cell::new(kind, inputs, name);
        if was_input && kind != CellKind::Input {
            self.primary_inputs.retain(|&p| p != id);
        }
        if !was_input && kind == CellKind::Input {
            self.primary_inputs.push(id);
        }
        if was_output && kind != CellKind::Output {
            self.primary_outputs.retain(|&p| p != id);
        }
        if !was_output && kind == CellKind::Output {
            self.primary_outputs.push(id);
        }
    }

    /// Number of cells created so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells have been created yet.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Generic cell constructor. Prefer the typed helpers below.
    pub fn push(&mut self, kind: CellKind, inputs: Vec<CellId>) -> CellId {
        let id = CellId::from_index(self.cells.len());
        self.cells.push(Cell::new(kind, inputs, None));
        if kind == CellKind::Input {
            self.primary_inputs.push(id);
        }
        if kind == CellKind::Output {
            self.primary_outputs.push(id);
        }
        id
    }

    /// Assigns (or replaces) the instance name of a cell.
    pub fn name_cell(&mut self, id: CellId, name: &str) {
        let cell = &mut self.cells[id.index()];
        *cell = Cell::new(cell.kind(), cell.inputs().to_vec(), Some(name.into()));
    }

    /// Re-connects pin `pin` of `cell` to `src`. Used to close sequential
    /// feedback loops and by netlist transforms.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range for the cell.
    pub fn set_input(&mut self, cell: CellId, pin: usize, src: CellId) {
        let old = &self.cells[cell.index()];
        let mut inputs = old.inputs().to_vec();
        assert!(
            pin < inputs.len(),
            "pin {pin} out of range for {} with {} pins",
            old.kind(),
            inputs.len()
        );
        inputs[pin] = src;
        self.cells[cell.index()] = Cell::new(old.kind(), inputs, old.name().map(Into::into));
    }

    /// Connects the `d` pin of a flop created with a `*_uninit`
    /// constructor.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is not a flip-flop.
    pub fn set_flop_d(&mut self, ff: CellId, d: CellId) {
        assert!(
            self.cells[ff.index()].kind().is_flop(),
            "set_flop_d on non-flop"
        );
        self.set_input(ff, 0, d);
    }

    /// The kind of an already-created cell.
    pub fn kind(&self, id: CellId) -> CellKind {
        self.cells[id.index()].kind()
    }

    /// The current inputs of an already-created cell.
    pub fn inputs(&self, id: CellId) -> &[CellId] {
        self.cells[id.index()].inputs()
    }

    // --- ports and constants -------------------------------------------

    /// Declares a named primary input.
    pub fn input(&mut self, name: &str) -> CellId {
        let id = self.push(CellKind::Input, Vec::new());
        self.name_cell(id, name);
        id
    }

    /// Declares a named primary output fed by `src`.
    pub fn output(&mut self, name: &str, src: CellId) -> CellId {
        let id = self.push(CellKind::Output, vec![src]);
        self.name_cell(id, name);
        id
    }

    /// Constant `0`.
    pub fn tie0(&mut self) -> CellId {
        self.push(CellKind::Tie0, Vec::new())
    }

    /// Constant `1`.
    pub fn tie1(&mut self) -> CellId {
        self.push(CellKind::Tie1, Vec::new())
    }

    /// Constant `X` (uncontrolled source).
    pub fn tiex(&mut self) -> CellId {
        self.push(CellKind::TieX, Vec::new())
    }

    // --- combinational gates -------------------------------------------

    /// Buffer.
    pub fn buf(&mut self, a: CellId) -> CellId {
        self.push(CellKind::Buf, vec![a])
    }

    /// Inverter.
    pub fn not(&mut self, a: CellId) -> CellId {
        self.push(CellKind::Not, vec![a])
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: CellId, b: CellId) -> CellId {
        self.push(CellKind::And, vec![a, b])
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: CellId, b: CellId) -> CellId {
        self.push(CellKind::Nand, vec![a, b])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: CellId, b: CellId) -> CellId {
        self.push(CellKind::Or, vec![a, b])
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: CellId, b: CellId) -> CellId {
        self.push(CellKind::Nor, vec![a, b])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: CellId, b: CellId) -> CellId {
        self.push(CellKind::Xor, vec![a, b])
    }

    /// 2-input XNOR.
    pub fn xnor2(&mut self, a: CellId, b: CellId) -> CellId {
        self.push(CellKind::Xnor, vec![a, b])
    }

    /// N-ary AND (≥ 2 inputs).
    pub fn and_n(&mut self, inputs: &[CellId]) -> CellId {
        self.push(CellKind::And, inputs.to_vec())
    }

    /// N-ary OR (≥ 2 inputs).
    pub fn or_n(&mut self, inputs: &[CellId]) -> CellId {
        self.push(CellKind::Or, inputs.to_vec())
    }

    /// N-ary XOR (≥ 2 inputs).
    pub fn xor_n(&mut self, inputs: &[CellId]) -> CellId {
        self.push(CellKind::Xor, inputs.to_vec())
    }

    /// Two-to-one mux: `sel=0` selects `d0`.
    pub fn mux2(&mut self, sel: CellId, d0: CellId, d1: CellId) -> CellId {
        self.push(CellKind::Mux2, vec![sel, d0, d1])
    }

    // --- sequential cells ----------------------------------------------

    /// D flip-flop.
    pub fn dff(&mut self, d: CellId, clk: CellId) -> CellId {
        self.push(CellKind::Dff, vec![d, clk])
    }

    /// D flip-flop with its data pin left unconnected (close the loop
    /// with [`NetlistBuilder::set_flop_d`]).
    pub fn dff_uninit(&mut self, clk: CellId) -> CellId {
        self.push(CellKind::Dff, vec![UNCONNECTED, clk])
    }

    /// D flip-flop with asynchronous active-low reset.
    pub fn dff_rl(&mut self, d: CellId, clk: CellId, rstn: CellId) -> CellId {
        self.push(CellKind::DffRl, vec![d, clk, rstn])
    }

    /// D flip-flop with asynchronous active-high reset.
    pub fn dff_rh(&mut self, d: CellId, clk: CellId, rst: CellId) -> CellId {
        self.push(CellKind::DffRh, vec![d, clk, rst])
    }

    /// Mux-scan flip-flop (`se=1` captures `si`).
    pub fn sdff(&mut self, d: CellId, clk: CellId, se: CellId, si: CellId) -> CellId {
        self.push(CellKind::Sdff, vec![d, clk, se, si])
    }

    /// Mux-scan flip-flop with asynchronous active-low reset.
    pub fn sdff_rl(
        &mut self,
        d: CellId,
        clk: CellId,
        se: CellId,
        si: CellId,
        rstn: CellId,
    ) -> CellId {
        self.push(CellKind::SdffRl, vec![d, clk, se, si, rstn])
    }

    /// Transparent-low latch.
    pub fn latch_low(&mut self, d: CellId, en: CellId) -> CellId {
        self.push(CellKind::LatchLow, vec![d, en])
    }

    /// Integrated clock-gating cell (glitch-free AND of `clk` and a
    /// latched `en`).
    pub fn clock_gate(&mut self, clk: CellId, en: CellId) -> CellId {
        self.push(CellKind::ClockGate, vec![clk, en])
    }

    /// Synchronous RAM macro plus its read-port cells. Returns
    /// `(handle, read_bits)`.
    ///
    /// # Panics
    ///
    /// Panics if the pin groups don't match `addr.len()`/`din.len()` or
    /// exceed `u8` widths.
    pub fn ram(
        &mut self,
        clk: CellId,
        we: CellId,
        addr: &[CellId],
        din: &[CellId],
    ) -> (CellId, Vec<CellId>) {
        let addr_bits = u8::try_from(addr.len()).expect("addr width exceeds u8");
        let data_bits = u8::try_from(din.len()).expect("data width exceeds u8");
        let mut inputs = Vec::with_capacity(2 + addr.len() + din.len());
        inputs.push(clk);
        inputs.push(we);
        inputs.extend_from_slice(addr);
        inputs.extend_from_slice(din);
        let handle = self.push(
            CellKind::Ram {
                addr_bits,
                data_bits,
            },
            inputs,
        );
        let outs = (0..data_bits)
            .map(|bit| self.push(CellKind::RamOut { bit }, vec![handle]))
            .collect();
        (handle, outs)
    }

    // --- finish ----------------------------------------------------------

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// Returns every structural defect found: dangling/unconnected pins,
    /// arity mismatches, combinational loops and RAM wiring mistakes.
    pub fn finish(self) -> Result<Netlist, BuildError> {
        let mut errors = Vec::new();
        let n = self.cells.len();

        for (i, cell) in self.cells.iter().enumerate() {
            let id = CellId::from_index(i);
            match cell.kind().fixed_arity() {
                Some(want) if cell.inputs().len() != want => {
                    errors.push(ValidateError::BadArity {
                        cell: id,
                        kind: cell.kind(),
                        got: cell.inputs().len(),
                    });
                }
                None if cell.inputs().len() < cell.kind().min_arity() => {
                    errors.push(ValidateError::BadArity {
                        cell: id,
                        kind: cell.kind(),
                        got: cell.inputs().len(),
                    });
                }
                _ => {}
            }
            for &src in cell.inputs() {
                if src.index() >= n {
                    errors.push(ValidateError::DanglingInput {
                        cell: id,
                        input: src,
                    });
                }
            }
            if let CellKind::RamOut { bit } = cell.kind() {
                match cell.inputs().first() {
                    Some(&h) if h.index() < n => match self.cells[h.index()].kind() {
                        CellKind::Ram { data_bits, .. } => {
                            if bit >= data_bits {
                                errors.push(ValidateError::RamOutBitOutOfRange {
                                    cell: id,
                                    bit,
                                    data_bits,
                                });
                            }
                        }
                        _ => errors.push(ValidateError::RamOutWithoutRam { cell: id }),
                    },
                    _ => {} // dangling already reported
                }
            }
        }
        // RAM handles must only feed RamOut cells.
        for (i, cell) in self.cells.iter().enumerate() {
            if matches!(cell.kind(), CellKind::RamOut { .. }) {
                continue;
            }
            for &src in cell.inputs() {
                if src.index() < n && matches!(self.cells[src.index()].kind(), CellKind::Ram { .. })
                {
                    errors.push(ValidateError::RamHandleMisused {
                        cell: CellId::from_index(i),
                    });
                }
            }
        }

        if !errors.is_empty() {
            return Err(BuildError::new(errors));
        }

        let lev = levelize(&self.cells).map_err(|e| BuildError::new(vec![e]))?;
        Ok(Netlist::assemble(
            self.name,
            self.cells,
            self.primary_inputs,
            self.primary_outputs,
            lev,
        ))
    }
}

/// Kahn's algorithm over the combinational subgraph. Sequential cells and
/// sources are level 0 and do not propagate dependencies.
fn levelize(cells: &[Cell]) -> Result<Levelization, ValidateError> {
    let n = cells.len();
    let is_comb: Vec<bool> = cells
        .iter()
        .map(|c| c.kind().is_combinational() && !c.inputs().is_empty())
        .collect();

    let mut indegree = vec![0u32; n];
    let mut comb_total = 0usize;
    for (i, cell) in cells.iter().enumerate() {
        if !is_comb[i] {
            continue;
        }
        comb_total += 1;
        indegree[i] = cell.inputs().iter().filter(|s| is_comb[s.index()]).count() as u32;
    }

    let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, cell) in cells.iter().enumerate() {
        if !is_comb[i] {
            continue;
        }
        for &src in cell.inputs() {
            if is_comb[src.index()] {
                fanout[src.index()].push(i as u32);
            }
        }
    }

    let mut level = vec![0u32; n];
    let mut order = Vec::with_capacity(comb_total);
    let mut queue: VecDeque<u32> = (0..n as u32)
        .filter(|&i| is_comb[i as usize] && indegree[i as usize] == 0)
        .collect();

    let mut max_level = 0;
    let mut processed = 0usize;
    while let Some(i) = queue.pop_front() {
        let iu = i as usize;
        let lvl = cells[iu]
            .inputs()
            .iter()
            .map(|s| level[s.index()])
            .max()
            .unwrap_or(0)
            + 1;
        level[iu] = lvl;
        max_level = max_level.max(lvl);
        order.push(CellId::from_index(iu));
        processed += 1;
        for &f in &fanout[iu] {
            indegree[f as usize] -= 1;
            if indegree[f as usize] == 0 {
                queue.push_back(f);
            }
        }
    }

    if processed != comb_total {
        let cell = (0..n)
            .find(|&i| is_comb[i] && indegree[i] > 0)
            .map(CellId::from_index)
            .expect("unprocessed comb cell must exist");
        return Err(ValidateError::CombinationalLoop { cell });
    }
    Ok(Levelization::new(order, level, max_level))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconnected_pin_is_reported() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let ff = b.dff_uninit(clk);
        b.output("q", ff);
        let err = b.finish().unwrap_err();
        assert!(matches!(
            err.errors()[0],
            ValidateError::DanglingInput { .. }
        ));
    }

    #[test]
    fn combinational_loop_is_reported() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        // g1 = and(a, g2); g2 = not(g1) — a comb loop.
        let g1 = b.and2(a, a); // placeholder second pin, patched below
        let g2 = b.not(g1);
        b.set_input(g1, 1, g2);
        b.output("o", g2);
        let err = b.finish().unwrap_err();
        assert!(matches!(
            err.errors()[0],
            ValidateError::CombinationalLoop { .. }
        ));
    }

    #[test]
    fn bad_arity_is_reported() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        b.push(CellKind::Mux2, vec![a, a]);
        let err = b.finish().unwrap_err();
        assert!(matches!(err.errors()[0], ValidateError::BadArity { .. }));
    }

    #[test]
    fn nary_gate_needs_two_inputs() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        b.push(CellKind::And, vec![a]);
        let err = b.finish().unwrap_err();
        assert!(matches!(err.errors()[0], ValidateError::BadArity { .. }));
    }

    #[test]
    fn ram_wiring_is_checked() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let we = b.input("we");
        let a0 = b.input("a0");
        let d0 = b.input("d0");
        let (handle, outs) = b.ram(clk, we, &[a0], &[d0]);
        // Feeding the handle into a gate is illegal.
        let bad = b.and2(handle, d0);
        b.output("o", bad);
        b.output("r", outs[0]);
        let err = b.finish().unwrap_err();
        assert!(err
            .errors()
            .iter()
            .any(|e| matches!(e, ValidateError::RamHandleMisused { .. })));
    }

    #[test]
    fn ram_out_bit_range_checked() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let we = b.input("we");
        let a0 = b.input("a0");
        let d0 = b.input("d0");
        let (handle, _outs) = b.ram(clk, we, &[a0], &[d0]);
        let bad = b.push(CellKind::RamOut { bit: 5 }, vec![handle]);
        b.output("o", bad);
        let err = b.finish().unwrap_err();
        assert!(err
            .errors()
            .iter()
            .any(|e| matches!(e, ValidateError::RamOutBitOutOfRange { .. })));
    }

    #[test]
    fn valid_design_builds() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let d = b.input("d");
        let se = b.input("se");
        let si = b.input("si");
        let ff = b.sdff(d, clk, se, si);
        b.output("q", ff);
        let nl = b.finish().unwrap();
        assert_eq!(nl.len(), 6);
        assert_eq!(nl.flops().count(), 1);
    }
}
