//! Generator configuration.

/// One clock domain of the generated SOC.
#[derive(Debug, Clone)]
pub struct DomainConfig {
    /// Domain name.
    pub name: String,
    /// Functional frequency in MHz (must divide into the PLL model).
    pub freq_mhz: f64,
    /// Number of flip-flops in this domain.
    pub flops: usize,
}

impl DomainConfig {
    /// Creates a domain config.
    pub fn new(name: &str, freq_mhz: f64, flops: usize) -> Self {
        DomainConfig {
            name: name.to_owned(),
            freq_mhz,
            flops,
        }
    }
}

/// Full generator configuration.
///
/// The defaults of [`SocConfig::paper_like`] mirror the structural
/// features the paper's device exposes, scaled down to laptop-ATPG
/// size; all fractions are per-domain.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// RNG seed — same seed, same netlist.
    pub seed: u64,
    /// Design name.
    pub name: String,
    /// Clock domains (the paper: two, at 75 and 150 MHz).
    pub domains: Vec<DomainConfig>,
    /// Combinational gates created per flop (logic density).
    pub gates_per_flop: usize,
    /// Functional primary inputs.
    pub pi_count: usize,
    /// Functional primary outputs.
    pub po_count: usize,
    /// Fraction of flops left out of the scan chains.
    pub non_scan_fraction: f64,
    /// Fraction of each domain's flops whose cone taps the *other*
    /// domain (synchronous domain crossings).
    pub crossing_fraction: f64,
    /// Fraction of flops with an asynchronous reset tied to the global
    /// `rstn` pin.
    pub reset_fraction: f64,
    /// Number of RAM macros.
    pub ram_blocks: usize,
    /// RAM address bits.
    pub ram_addr_bits: u8,
    /// RAM data bits.
    pub ram_data_bits: u8,
    /// Number of bidirectional pads (with feedback paths).
    pub bidi_pads: usize,
    /// Scan chains to stitch.
    pub scan_chains: usize,
}

impl SocConfig {
    /// A two-domain configuration with the paper's structural features,
    /// sized by `flops_per_domain`.
    pub fn paper_like(seed: u64, flops_per_domain: usize) -> Self {
        SocConfig {
            seed,
            name: format!("soc_{seed}"),
            domains: vec![
                DomainConfig::new("dom75", 75.0, flops_per_domain),
                DomainConfig::new("dom150", 150.0, flops_per_domain),
            ],
            gates_per_flop: 5,
            pi_count: 24,
            po_count: 24,
            non_scan_fraction: 0.05,
            crossing_fraction: 0.12,
            reset_fraction: 0.10,
            ram_blocks: 2,
            ram_addr_bits: 4,
            ram_data_bits: 8,
            bidi_pads: 6,
            scan_chains: 8,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        SocConfig {
            ram_blocks: 1,
            ram_addr_bits: 2,
            ram_data_bits: 2,
            bidi_pads: 2,
            pi_count: 6,
            po_count: 6,
            scan_chains: 2,
            ..SocConfig::paper_like(seed, 24)
        }
    }

    /// Total flop count across domains.
    pub fn total_flops(&self) -> usize {
        self.domains.iter().map(|d| d.flops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_like_has_two_domains() {
        let cfg = SocConfig::paper_like(1, 100);
        assert_eq!(cfg.domains.len(), 2);
        assert_eq!(cfg.total_flops(), 200);
        assert!(cfg.crossing_fraction > 0.0);
        assert!(cfg.non_scan_fraction > 0.0);
    }
}
