//! The in-process flow service: one [`FlowService::submit`] call runs
//! one job against the shared artifact cache.
//!
//! This is the layer both frontends share — the TCP daemon
//! ([`crate::server`]) and in-process consumers (`occ-bench`'s Table-1
//! sweep, the `delay_test_flow` example). A *warm* job (every artifact
//! it needs already cached) executes no compile stage at all: the
//! graph, procedures and delay table arrive as `Arc` clones and
//! [`TestFlow::artifacts`](occ_flow::TestFlow::artifacts) routes them
//! past the corresponding stages. Reports are byte-identical to a cold
//! run — each artifact is a pure function of the content its cache key
//! hashes.

use crate::cache::{
    delays_bytes, procedures_bytes, Artifact, ArtifactCache, ArtifactKind, CacheStats,
};
use crate::design::{design_hash, DesignArtifact};
use crate::faults::{cooperative_delay, FaultAction, FaultPlan};
use crate::hash::Fnv64;
use occ_atpg::AtpgOptions;
use occ_core::ClockingMode;
use occ_fault::FaultModel;
use occ_flow::{
    build_procedures, AtpgEngineChoice, CancelToken, EngineChoice, FlowArtifacts, FlowError,
    FlowReport, LintGate, PatternSource, TestFlow,
};
use occ_fsim::FrameSpec;
use occ_sim::{CompiledDelays, DelayModel};
use occ_soc::SocConfig;
use std::sync::Arc;
use std::time::Duration;

/// One job: which design, which flow configuration.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The design, by content (the generator config *is* the design —
    /// same config, same netlist).
    pub design: SocConfig,
    /// Clocking mode of the capture procedures.
    pub clocking: ClockingMode,
    /// Fault model.
    pub fault_model: FaultModel,
    /// Fault-simulation engine.
    pub engine: EngineChoice,
    /// Test-generation engine.
    pub atpg_engine: AtpgEngineChoice,
    /// ATPG options (backtrack limit, random bootstrap, compaction).
    pub atpg: AtpgOptions,
    /// Mask the bidi-pad feedback paths (the ATE constraint).
    pub mask_bidi: bool,
    /// Run the delay-test-quality stage (default delay model).
    pub timing: bool,
    /// Run the pre-ATPG lint stage under this gate.
    pub lint: Option<LintGate>,
    /// How patterns reach the scan chains (external ATPG, EDT
    /// decompression, LBIST). The artifact cache keys (design,
    /// procedures, delays) do not include the source, so a sweep over
    /// sources on one design compiles everything exactly once.
    pub pattern_source: PatternSource,
    /// Skip the flow entirely: compile (or fetch) the design artifact
    /// and report its analysis only.
    pub analyze_only: bool,
    /// Per-job time budget in milliseconds (`None` = unbounded). A job
    /// past its deadline is cooperatively cancelled at the next batch
    /// boundary and returns [`FlowError::DeadlineExceeded`].
    pub deadline_ms: Option<u64>,
    /// Capture a span tree for this job: the service installs a
    /// detail-on recorder around artifact fetches and the flow, so the
    /// report's `trace` block holds the whole job's span forest
    /// (cache spans included).
    pub trace: bool,
}

impl JobSpec {
    /// A flow job on `design` with the [`TestFlow`] defaults: external
    /// clock (4 pulses), transition faults, serial fault sim, compiled
    /// ATPG, no timing, no lint.
    #[must_use]
    pub fn new(design: SocConfig) -> Self {
        JobSpec {
            design,
            clocking: ClockingMode::ExternalClock { max_pulses: 4 },
            fault_model: FaultModel::Transition,
            engine: EngineChoice::Serial,
            atpg_engine: AtpgEngineChoice::Compiled,
            atpg: AtpgOptions::default(),
            mask_bidi: false,
            timing: false,
            lint: None,
            pattern_source: PatternSource::ExternalAtpg,
            analyze_only: false,
            deadline_ms: None,
            trace: false,
        }
    }
}

/// Which of a job's artifact lookups hit the cache. `None` = the job
/// did not need that artifact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCacheStats {
    /// SOC + compiled graph.
    pub design_hit: bool,
    /// Capture procedures (`None` for analyze-only jobs).
    pub procedures_hit: Option<bool>,
    /// Compiled delay table (`None` for untimed jobs).
    pub delays_hit: Option<bool>,
}

impl JobCacheStats {
    /// True when every artifact the job needed came from the cache —
    /// i.e. the job ran no compile stage.
    #[must_use]
    pub fn warm(&self) -> bool {
        self.design_hit && self.procedures_hit.unwrap_or(true) && self.delays_hit.unwrap_or(true)
    }
}

/// Structural summary of a compiled design artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignAnalysis {
    /// Design name (from the generator config).
    pub design: String,
    /// Netlist cells.
    pub cells: usize,
    /// Flops bound into the capture model.
    pub flops: usize,
    /// Scan-chain flops.
    pub scan_flops: usize,
    /// Clock domains.
    pub domains: usize,
    /// Approximate resident bytes of the cached artifact.
    pub graph_bytes: usize,
}

/// What a job returns: identity, cache behaviour, analysis, and (for
/// flow jobs) the full report.
#[derive(Debug)]
pub struct JobOutcome {
    /// Content hash of the design config.
    pub design_hash: u64,
    /// True when the job ran no compile stage (see
    /// [`JobCacheStats::warm`]).
    pub warm: bool,
    /// Per-artifact hit/miss of this job.
    pub cache: JobCacheStats,
    /// Structural summary of the design.
    pub analysis: DesignAnalysis,
    /// The flow report (`None` for analyze-only jobs).
    pub report: Option<FlowReport>,
}

/// The shared job service: an artifact cache plus the logic to run one
/// job against it. All methods take `&self`; share across threads with
/// an `Arc`.
#[derive(Debug)]
pub struct FlowService {
    cache: ArtifactCache,
    faults: FaultPlan,
}

impl FlowService {
    /// Creates a service with a cache byte budget (0 = unlimited).
    #[must_use]
    pub fn new(cache_budget: usize) -> Self {
        Self::with_faults(cache_budget, FaultPlan::none())
    }

    /// [`FlowService::new`] with a fault-injection plan (chaos tests
    /// and the degraded-mode bench; see [`crate::faults`]).
    #[must_use]
    pub fn with_faults(cache_budget: usize, faults: FaultPlan) -> Self {
        FlowService {
            cache: ArtifactCache::new(cache_budget),
            faults,
        }
    }

    /// Global cache counters and occupancy.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Runs one job: fetch-or-compile the artifacts it needs, then run
    /// the flow over them (unless analyze-only).
    ///
    /// # Errors
    ///
    /// Degenerate designs map onto the closest [`FlowError`]
    /// ([`FlowError::NoDomains`], [`FlowError::NoScanChains`]) before
    /// the generator would panic on them; flow misconfigurations
    /// propagate from [`TestFlow::run`]; a job past its
    /// [`JobSpec::deadline_ms`] returns
    /// [`FlowError::DeadlineExceeded`].
    pub fn submit(&self, job: &JobSpec) -> Result<JobOutcome, FlowError> {
        self.submit_with_cancel(job, None)
    }

    /// [`FlowService::submit`] under an external cancel scope: the
    /// job's token is a child of `parent` (the daemon's drain token)
    /// carrying the job's own [`JobSpec::deadline_ms`] budget, so one
    /// server-wide cancel fans out to every in-flight job while each
    /// job keeps its own deadline.
    ///
    /// # Errors
    ///
    /// As [`FlowService::submit`], plus [`FlowError::Cancelled`] when
    /// `parent` (or the job's own token) is cancelled mid-run.
    pub fn submit_with_cancel(
        &self,
        job: &JobSpec,
        parent: Option<&CancelToken>,
    ) -> Result<JobOutcome, FlowError> {
        let deadline = job.deadline_ms.map(Duration::from_millis);
        let cancel = match (parent, deadline) {
            (Some(p), d) => p.child(d),
            (None, Some(d)) => CancelToken::with_deadline(d),
            (None, None) => CancelToken::never(),
        };
        self.run(job, &cancel)
    }

    fn run(&self, job: &JobSpec, cancel: &CancelToken) -> Result<JobOutcome, FlowError> {
        // Stage-boundary cancellation poll; the flow itself polls the
        // same token at a finer grain once it starts.
        let check = || -> Result<(), FlowError> {
            match cancel.cause() {
                Some(cause) => Err(cause.into()),
                None => Ok(()),
            }
        };
        check()?;
        // A traced job installs a detail-on recorder for its whole
        // duration: artifact-cache spans recorded below land in the
        // same forest the flow's `trace` block reports.
        let _trace_scope = if job.trace {
            let recorder = occ_obs::SpanRecorder::new();
            Some(recorder.install(true))
        } else {
            None
        };
        let dh = design_hash(&job.design);
        let (design, design_hit) = self.design_artifact(dh, &job.design)?;
        let mut cache = JobCacheStats {
            design_hit,
            ..JobCacheStats::default()
        };
        let analysis = DesignAnalysis {
            design: job.design.name.clone(),
            cells: design.soc.netlist().len(),
            flops: design.graph.flop_count(),
            scan_flops: design.graph.scan_flops().len(),
            domains: job.design.domains.len(),
            graph_bytes: design.approx_bytes(),
        };

        if job.analyze_only {
            return Ok(JobOutcome {
                design_hash: dh,
                warm: cache.warm(),
                cache,
                analysis,
                report: None,
            });
        }
        check()?;

        let n_domains = job.design.domains.len();
        let (procedures, procs_hit) =
            self.procedures_artifact(job.clocking, job.fault_model, n_domains)?;
        cache.procedures_hit = Some(procs_hit);

        let delays = if job.timing {
            let (table, hit) = self.delays_artifact(dh, &design)?;
            cache.delays_hit = Some(hit);
            Some(table)
        } else {
            None
        };

        // A virtual slow stage for the chaos suite: the injected delay
        // polls the job's token, so deadlines bound it like real work.
        if let Some(FaultAction::DelayMs(ms)) = self.faults.fire("flow.stage") {
            cooperative_delay(ms, cancel);
        }
        check()?;

        let artifacts = FlowArtifacts {
            graph: Some(Arc::clone(&design.graph)),
            procedures: Some(procedures),
            delays,
        };
        let mut flow = TestFlow::new(&design.soc)
            .clocking(job.clocking)
            .fault_model(job.fault_model)
            .engine(job.engine)
            .atpg_engine(job.atpg_engine)
            .atpg(job.atpg.clone())
            .mask_bidi(job.mask_bidi)
            .pattern_source(job.pattern_source.clone())
            .artifacts(artifacts)
            .cancel(cancel.clone())
            .trace(job.trace);
        if job.timing {
            flow = flow.timing(DelayModel::default());
        }
        if let Some(gate) = job.lint {
            flow = flow.lint(gate);
        }
        let report = flow.run()?;

        Ok(JobOutcome {
            design_hash: dh,
            warm: cache.warm(),
            cache,
            analysis,
            report: Some(report),
        })
    }

    fn design_artifact(
        &self,
        dh: u64,
        config: &SocConfig,
    ) -> Result<(Arc<DesignArtifact>, bool), FlowError> {
        let key = kind_key("design", dh);
        let (artifact, hit) = self.cache.get_or_build(ArtifactKind::Design, key, || {
            // Chaos-suite injection: a builder that panics or errors
            // must leave the shard clean (BuildGuard) and un-cached.
            match self.faults.fire("cache.design.build") {
                Some(FaultAction::Panic(msg)) => panic!("{msg}"),
                Some(FaultAction::Error(msg)) => return Err(FlowError::Internal(msg)),
                _ => {}
            }
            // Reject configs the generator would panic on, with the
            // closest typed error.
            if config.domains.is_empty() || config.total_flops() == 0 {
                return Err(FlowError::NoDomains);
            }
            if config.scan_chains == 0 {
                return Err(FlowError::NoScanChains);
            }
            let artifact = DesignArtifact::build(config);
            let bytes = artifact.approx_bytes();
            Ok((Artifact::Design(Arc::new(artifact)), bytes))
        })?;
        match artifact {
            Artifact::Design(design) => Ok((design, hit)),
            _ => unreachable!("design key returned a non-design artifact"),
        }
    }

    fn procedures_artifact(
        &self,
        mode: ClockingMode,
        fault_model: FaultModel,
        n_domains: usize,
    ) -> Result<(Arc<Vec<FrameSpec>>, bool), FlowError> {
        // Keyed by what determines the procedures — *not* the design:
        // two designs with the same domain count share the entry.
        let mut h = Fnv64::new();
        h.write_str(&mode.to_string());
        h.write_str(match fault_model {
            FaultModel::StuckAt => "stuck-at",
            FaultModel::Transition => "transition",
        });
        h.write_u64(n_domains as u64);
        let key = kind_key("procedures", h.finish());
        let (artifact, hit) = self.cache.get_or_build(ArtifactKind::Procedures, key, || {
            let procs = build_procedures(mode, fault_model, n_domains)?;
            let bytes = procedures_bytes(&procs);
            Ok((Artifact::Procedures(Arc::new(procs)), bytes))
        })?;
        match artifact {
            Artifact::Procedures(procs) => Ok((procs, hit)),
            _ => unreachable!("procedures key returned a non-procedures artifact"),
        }
    }

    fn delays_artifact(
        &self,
        dh: u64,
        design: &DesignArtifact,
    ) -> Result<(Arc<CompiledDelays>, bool), FlowError> {
        // Keyed by design + delay-model identity. Jobs always grade
        // under the default model, so the tag is a constant; a future
        // per-job delay model would hash its parameters here.
        let mut h = Fnv64::new();
        h.write_u64(dh);
        h.write_str("delay-model:default");
        let key = kind_key("delays", h.finish());
        let (artifact, hit) = self.cache.get_or_build(ArtifactKind::Delays, key, || {
            let table = DelayModel::default().compile(design.soc.netlist());
            let bytes = delays_bytes(&table);
            Ok((Artifact::Delays(Arc::new(table)), bytes))
        })?;
        match artifact {
            Artifact::Delays(table) => Ok((table, hit)),
            _ => unreachable!("delays key returned a non-delays artifact"),
        }
    }
}

/// Folds the artifact kind into the key so one map serves all kinds
/// without cross-kind collisions.
fn kind_key(kind: &str, content: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(kind);
    h.write_u64(content);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_job(seed: u64) -> JobSpec {
        let mut job = JobSpec::new(SocConfig::tiny(seed));
        job.clocking = ClockingMode::SimpleCpf;
        job.atpg = AtpgOptions {
            random_patterns: 32,
            backtrack_limit: 12,
            ..AtpgOptions::default()
        };
        job
    }

    #[test]
    fn cold_then_warm() {
        let service = FlowService::new(0);
        let cold = service.submit(&quick_job(3)).unwrap();
        assert!(!cold.warm);
        assert!(!cold.cache.design_hit);
        let warm = service.submit(&quick_job(3)).unwrap();
        assert!(warm.warm, "{:?}", warm.cache);
        assert_eq!(cold.design_hash, warm.design_hash);
        // Identical coverage — full byte-identity is pinned in
        // tests/service.rs via canonical JSON.
        assert_eq!(
            cold.report.unwrap().coverage_pct(),
            warm.report.unwrap().coverage_pct()
        );
    }

    #[test]
    fn analyze_only_skips_the_flow() {
        let service = FlowService::new(0);
        let mut job = quick_job(4);
        job.analyze_only = true;
        let out = service.submit(&job).unwrap();
        assert!(out.report.is_none());
        assert!(out.analysis.cells > 0);
        assert!(out.analysis.scan_flops > 0);
        assert_eq!(out.cache.procedures_hit, None);
    }

    #[test]
    fn degenerate_design_is_typed_not_a_panic() {
        let service = FlowService::new(0);
        let mut job = quick_job(5);
        job.design.domains.clear();
        assert_eq!(service.submit(&job).unwrap_err(), FlowError::NoDomains);
        let mut job = quick_job(5);
        job.design.scan_chains = 0;
        assert_eq!(service.submit(&job).unwrap_err(), FlowError::NoScanChains);
    }
}
