//! Structural fault-equivalence collapsing.
//!
//! Classic rules:
//!
//! * controlling-value equivalence: an AND-input stuck at the
//!   controlling value is equivalent to the output stuck at the
//!   controlled value (and the NAND/OR/NOR variants);
//! * inverter/buffer chains collapse onto their driver when the driver
//!   has no other fanout;
//! * an input pin whose driver has a single fanout is the same net as
//!   the driver's output.
//!
//! Representatives are chosen deterministically (lowest site key), so
//! collapsed lists are stable across runs.

use crate::fault::site_key;
use crate::{Fault, FaultSite, Polarity};
use occ_netlist::{CellKind, Netlist};
use std::collections::HashMap;

/// Collapses `raw` into representative faults (sorted, deduplicated).
pub(crate) fn collapse(netlist: &Netlist, raw: &[Fault]) -> Vec<Fault> {
    let mut index: HashMap<(FaultSite, Polarity), usize> = HashMap::new();
    for (i, f) in raw.iter().enumerate() {
        index.insert((f.site(), f.polarity()), i);
    }
    let mut uf = UnionFind::new(raw.len());

    let lookup = |site: FaultSite, pol: Polarity| index.get(&(site, pol)).copied();

    for (id, cell) in netlist.iter() {
        let kind = cell.kind();
        match kind {
            CellKind::Buf | CellKind::Not => {
                let driver = cell.inputs()[0];
                if netlist.fanouts(driver).len() == 1 {
                    for pol in [Polarity::P0, Polarity::P1] {
                        let out_pol = if kind == CellKind::Not {
                            pol.inverted()
                        } else {
                            pol
                        };
                        if let (Some(a), Some(b)) = (
                            lookup(FaultSite::Output(driver), pol),
                            lookup(FaultSite::Output(id), out_pol),
                        ) {
                            uf.union(a, b);
                        }
                    }
                }
            }
            CellKind::And | CellKind::Nand | CellKind::Or | CellKind::Nor => {
                let (ctl, out_pol) = match kind {
                    CellKind::And => (Polarity::P0, Polarity::P0),
                    CellKind::Nand => (Polarity::P0, Polarity::P1),
                    CellKind::Or => (Polarity::P1, Polarity::P1),
                    CellKind::Nor => (Polarity::P1, Polarity::P0),
                    _ => unreachable!(),
                };
                for pin in 0..cell.inputs().len() {
                    let site = FaultSite::Input {
                        cell: id,
                        pin: pin as u8,
                    };
                    if let (Some(a), Some(b)) =
                        (lookup(site, ctl), lookup(FaultSite::Output(id), out_pol))
                    {
                        uf.union(a, b);
                    }
                }
            }
            _ => {}
        }

        // Pin faults on single-fanout nets are the driver's net faults.
        for (pin, &driver) in cell.inputs().iter().enumerate() {
            let site = FaultSite::Input {
                cell: id,
                pin: pin as u8,
            };
            if netlist.fanouts(driver).len() == 1 {
                for pol in [Polarity::P0, Polarity::P1] {
                    if let (Some(a), Some(b)) =
                        (lookup(site, pol), lookup(FaultSite::Output(driver), pol))
                    {
                        uf.union(a, b);
                    }
                }
            }
        }
    }

    // Pick the representative with the smallest (site_key, polarity).
    let mut best: HashMap<usize, usize> = HashMap::new();
    for i in 0..raw.len() {
        let root = uf.find(i);
        let cand = best.entry(root).or_insert(i);
        let ck = (site_key(raw[*cand].site()), raw[*cand].polarity());
        let ik = (site_key(raw[i].site()), raw[i].polarity());
        if ik < ck {
            *cand = i;
        }
    }
    let mut reps: Vec<Fault> = best.values().map(|&i| raw[i]).collect();
    reps.sort_by_key(|f| (site_key(f.site()), f.polarity()));
    reps.dedup();
    reps
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{FaultSite, FaultUniverse, Polarity};
    use occ_netlist::NetlistBuilder;

    #[test]
    fn and_controlling_values_collapse() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.and2(a, c);
        b.output("y", g);
        let nl = b.finish().unwrap();
        let uni = FaultUniverse::stuck_at(&nl);
        // Uncollapsed: out(a)x2, out(b)x2, out(g)x2, pin0 x2, pin1 x2 = 10.
        // sa0 class: {out(a) sa0, out(b) sa0 (via single-fanout pins),
        // pin0 sa0, pin1 sa0, out(g) sa0} -> 1 representative.
        // Remaining: out(a) sa1 (= pin0 sa1), out(b) sa1 (= pin1 sa1),
        // out(g) sa1 -> total 4.
        assert_eq!(uni.faults().len(), 4);
    }

    #[test]
    fn inverter_chain_fully_collapses() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let n1 = b.not(a);
        let n2 = b.not(n1);
        let n3 = b.not(n2);
        b.output("y", n3);
        let nl = b.finish().unwrap();
        let uni = FaultUniverse::stuck_at(&nl);
        assert_eq!(uni.faults().len(), 2);
        // Representatives sit on the first net of the chain.
        for f in uni.faults() {
            assert_eq!(f.site(), FaultSite::Output(a));
        }
    }

    #[test]
    fn fanout_stem_blocks_chain_collapse() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let n1 = b.not(a);
        let g1 = b.and2(n1, a); // n1 has fanout 2
        let n2 = b.not(n1);
        b.output("y1", g1);
        b.output("y2", n2);
        let nl = b.finish().unwrap();
        let uni = FaultUniverse::stuck_at(&nl);
        // out(a) faults must stay separate from out(n1): a has fanout 2.
        let a_faults = uni
            .faults()
            .iter()
            .filter(|f| f.site() == FaultSite::Output(a))
            .count();
        assert_eq!(a_faults, 2);
        // n2 collapses into n1? No: n1 has fanout 2, so n2's input is a
        // branch — n2 keeps its own faults.
        let n2_faults = uni
            .faults()
            .iter()
            .filter(|f| f.site() == FaultSite::Output(n2))
            .count();
        assert_eq!(n2_faults, 2);
    }

    #[test]
    fn nor_collapse_polarity() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.nor2(a, c);
        b.output("y", g);
        let nl = b.finish().unwrap();
        let uni = FaultUniverse::stuck_at(&nl);
        // NOR: pin sa1 == out sa0. Classes: {a1,b1(pins),g0} + {a0} +
        // {b0} + {g1} = 4.
        assert_eq!(uni.faults().len(), 4);
        // And the merged class representative must carry polarity of the
        // lowest site (out(a) sa1).
        assert!(uni
            .faults()
            .iter()
            .any(|f| f.site() == FaultSite::Output(a) && f.polarity() == Polarity::P1));
    }
}
