//! Flow-level contract of the delay-test-quality stage: strictly
//! opt-in (untimed reports are unchanged by construction and carry no
//! quality block), and discriminating — at-speed CPF clocking scores a
//! better SDQL / weighted coverage than the slow external tester clock
//! even where logical coverage is comparable.

use occ_atpg::AtpgOptions;
use occ_core::ClockingMode;
use occ_flow::{EngineChoice, FaultKind, FlowReport, Stage, TestFlow, TimingConfig};
use occ_sim::DelayModel;
use occ_soc::{generate, SocConfig};

fn quick() -> AtpgOptions {
    AtpgOptions {
        random_patterns: 32,
        backtrack_limit: 12,
        ..AtpgOptions::default()
    }
}

fn run(soc: &occ_soc::Soc, mode: ClockingMode, timed: bool) -> FlowReport {
    let mut flow = TestFlow::new(soc)
        .clocking(mode)
        .fault_model(FaultKind::Transition)
        .mask_bidi(true)
        .engine(EngineChoice::Serial)
        .atpg(quick());
    if timed {
        flow = flow.timing(DelayModel::default());
    }
    flow.run().expect("flow validates")
}

#[test]
fn timing_is_strictly_opt_in() {
    let soc = generate(&SocConfig::tiny(5));
    let untimed = run(&soc, ClockingMode::SimpleCpf, false);
    let timed = run(&soc, ClockingMode::SimpleCpf, true);

    // The analysis pass changes nothing the untimed pipeline produces.
    assert!(untimed.delay_quality.is_none());
    assert_eq!(untimed.coverage, timed.coverage);
    assert_eq!(untimed.patterns(), timed.patterns());
    assert_eq!(untimed.stats(), timed.stats());
    for (fault, status) in untimed.result.faults.iter() {
        assert_eq!(status, timed.result.faults.status(fault), "fault {fault}");
    }
    assert!(!untimed.to_json().contains("delay_quality"));
    assert_eq!(untimed.stage_seconds(Stage::Timing), 0.0);

    // The timed report carries the block everywhere it serializes.
    let q = timed.delay_quality.as_ref().expect("quality block");
    assert_eq!(q.faults, timed.coverage.total);
    assert!(q.detected_timed > 0, "no timed detections");
    assert!(timed.to_json().contains("\"delay_quality\":{\"sdql\":"));
    assert!(timed.stage_seconds(Stage::Timing) > 0.0);
    let mut csv = Vec::new();
    timed.write_csv(&mut csv).unwrap();
    let csv = String::from_utf8(csv).unwrap();
    assert!(csv.contains("sdql"), "quality CSV block missing: {csv}");
    assert!(timed.to_string().contains("SDQL"));
    // Every simple-CPF window is an at-speed domain period.
    assert!(q.windows.iter().all(|w| w.at_speed && w.window_ps < 40_000));
}

#[test]
fn at_speed_clocking_beats_the_slow_tester_clock() {
    let soc = generate(&SocConfig::tiny(6));
    let cpf = run(&soc, ClockingMode::SimpleCpf, true);
    let ext = run(
        &soc,
        ClockingMode::ConstrainedExternal { max_pulses: 4 },
        true,
    );
    let qc = cpf.delay_quality.as_ref().unwrap();
    let qe = ext.delay_quality.as_ref().unwrap();
    // External windows are the 40 ns tester period; CPF windows are
    // the 75/150 MHz functional periods.
    assert!(qe.windows.iter().all(|w| w.window_ps == 40_000));
    assert!(qc.windows.iter().all(|w| w.window_ps <= 13_332));
    // The same logical detections screen far less through the slow
    // window: higher weighted coverage and lower SDQL for the CPF.
    assert!(
        qc.weighted_coverage_pct > qe.weighted_coverage_pct,
        "cpf {:.2}% <= ext {:.2}%",
        qc.weighted_coverage_pct,
        qe.weighted_coverage_pct
    );
    assert!(
        qc.sdql < qe.sdql,
        "cpf sdql {} >= ext sdql {}",
        qc.sdql,
        qe.sdql
    );
    // Observed test slacks are tighter at speed.
    assert!(qc.mean_test_slack_ps < qe.mean_test_slack_ps);
}

#[test]
fn custom_netlist_sources_use_default_periods() {
    use occ_fsim::ClockBinding;
    use occ_netlist::{Logic, NetlistBuilder};

    let mut b = NetlistBuilder::new("t");
    let clk = b.input("clk");
    let se = b.input("se");
    let si = b.input("si");
    let d = b.input("d");
    let f0 = b.sdff(d, clk, se, si);
    let g = b.not(f0);
    let _f1 = b.sdff(g, clk, se, f0);
    b.output("q", g);
    let nl = b.finish().unwrap();
    let mut binding = ClockBinding::new();
    binding.add_domain("a", clk);
    binding.constrain(se, Logic::Zero);
    binding.mask(si);

    let report = TestFlow::over(&nl, binding)
        .clocking(ClockingMode::SimpleCpf)
        .fault_model(FaultKind::Transition)
        .atpg(quick())
        .timing_config(TimingConfig {
            delays: DelayModel::uniform(5),
            ..TimingConfig::default()
        })
        .run()
        .expect("flow validates");
    let q = report.delay_quality.as_ref().unwrap();
    assert!(q
        .windows
        .iter()
        .all(|w| w.window_ps == occ_flow::DEFAULT_DOMAIN_PERIOD_PS));
}
