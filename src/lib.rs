//! # occ — on-chip test clock generation and delay-test ATPG
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! *Beck, Barondeau, Kaibel, Poehl, Lin, Press — "Logic Design for
//! On-Chip Test Clock Generation: Implementation Details and Impact on
//! Delay Test Quality", DATE 2005*.
//!
//! See `README.md` at the repository root for the architecture
//! overview, crate map and quickstart.
//!
//! ## Quick start
//!
//! The whole pipeline — SOC, scan, clocking mode, capture procedures,
//! ATPG, fault simulation, coverage report — is one builder chain:
//!
//! ```
//! use occ::flow::{EngineChoice, FaultKind, TestFlow};
//! use occ::core::ClockingMode;
//! use occ::atpg::AtpgOptions;
//! use occ::soc::{generate, SocConfig};
//!
//! # fn main() -> Result<(), occ::flow::FlowError> {
//! let soc = generate(&SocConfig::tiny(1));
//! let report = TestFlow::new(&soc)
//!     .clocking(ClockingMode::SimpleCpf)
//!     .fault_model(FaultKind::Transition)
//!     .engine(EngineChoice::Serial)
//!     .atpg(AtpgOptions { random_patterns: 32, backtrack_limit: 12,
//!                         ..AtpgOptions::default() })
//!     .run()?;
//! assert!(report.coverage_pct() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

/// Gate-level netlist kernel ([`occ_netlist`]).
pub mod netlist {
    pub use occ_netlist::*;
}

/// Event-driven and cycle-based logic simulation ([`occ_sim`]).
pub mod sim {
    pub use occ_sim::*;
}

/// Fault models and coverage accounting ([`occ_fault`]).
pub mod fault {
    pub use occ_fault::*;
}

/// Parallel-pattern fault simulation ([`occ_fsim`]).
pub mod fsim {
    pub use occ_fsim::*;
}

/// Scan insertion, chains and EDT compression ([`occ_dft`]).
pub mod dft {
    pub use occ_dft::*;
}

/// PODEM ATPG over capture procedures ([`occ_atpg`]).
pub mod atpg {
    pub use occ_atpg::*;
}

/// At-speed logic BIST (PRPG/MISR) and EDT-compressed delivery
/// ([`occ_bist`]).
pub mod bist {
    pub use occ_bist::*;
}

/// The paper's contribution: CPF clock generation ([`occ_core`]).
pub mod core {
    pub use occ_core::*;
}

/// Synthetic SOC and benchmark circuit generation ([`occ_soc`]).
pub mod soc {
    pub use occ_soc::*;
}

/// Slack-aware delay-test quality: compiled STA and SDQL grading
/// ([`occ_timing`]).
pub mod timing {
    pub use occ_timing::*;
}

/// Static design-rule and testability analysis ([`occ_lint`]).
pub mod lint {
    pub use occ_lint::*;
}

/// Unified observability: span tracing and the process-wide metrics
/// registry ([`occ_obs`]).
pub mod obs {
    pub use occ_obs::*;
}

/// The unified `TestFlow` pipeline API ([`occ_flow`]).
pub mod flow {
    pub use occ_flow::*;
}

/// The concurrent flow job service: content-hash artifact cache,
/// in-process [`FlowService`](occ_server::FlowService), TCP daemon
/// ([`occ_server`]).
pub mod server {
    pub use occ_server::*;
}
