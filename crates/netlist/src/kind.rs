//! Cell kinds (the primitive library) and their combinational semantics.

use crate::Logic;
use std::fmt;

/// The primitive cell library.
///
/// Sequential cells document their pin order in the variant docs; the
/// [`NetlistBuilder`](crate::NetlistBuilder) constructors enforce it.
///
/// # Examples
///
/// ```
/// use occ_netlist::{CellKind, Logic};
/// assert_eq!(CellKind::Nand.eval_comb(&[Logic::One, Logic::X]), Some(Logic::X));
/// assert_eq!(CellKind::Dff.eval_comb(&[Logic::One, Logic::Zero]), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Primary input (no cell inputs).
    Input,
    /// Primary output marker; one input, output mirrors it.
    Output,
    /// Constant logic `0`.
    Tie0,
    /// Constant logic `1`.
    Tie1,
    /// Constant unknown (models an uncontrolled source).
    TieX,
    /// Buffer.
    Buf,
    /// Inverter.
    Not,
    /// N-ary AND (≥ 2 inputs).
    And,
    /// N-ary NAND (≥ 2 inputs).
    Nand,
    /// N-ary OR (≥ 2 inputs).
    Or,
    /// N-ary NOR (≥ 2 inputs).
    Nor,
    /// N-ary XOR (≥ 2 inputs).
    Xor,
    /// N-ary XNOR (≥ 2 inputs).
    Xnor,
    /// Two-to-one mux; pins `[sel, d0, d1]`, output `d0` when `sel=0`.
    Mux2,
    /// D flip-flop; pins `[d, clk]`. Rising-edge triggered.
    Dff,
    /// D flip-flop with asynchronous active-low reset; pins `[d, clk, rstn]`.
    DffRl,
    /// D flip-flop with asynchronous active-high reset; pins `[d, clk, rst]`.
    ///
    /// Used by the CPF trigger/shift stages, which are cleared directly by
    /// `scan_en` (see Fig. 3 of the paper).
    DffRh,
    /// Mux-scan D flip-flop; pins `[d, clk, se, si]`. Captures `si` when
    /// `se=1`, `d` otherwise.
    Sdff,
    /// Mux-scan D flip-flop with asynchronous active-low reset; pins
    /// `[d, clk, se, si, rstn]`.
    SdffRl,
    /// Level-sensitive latch, transparent while `en=0`; pins `[d, en]`.
    LatchLow,
    /// Integrated clock-gating cell; pins `[clk, en]`.
    ///
    /// Behaves as `clk AND latch_low(en, clk)`: the enable is sampled by a
    /// transparent-low latch so the gated clock is glitch-free — the
    /// property the paper relies on ("the implementation of CGC makes sure
    /// that no glitches or spikes appear on clk-out").
    ClockGate,
    /// Synchronous RAM macro; pins `[clk, we, addr..., din...]`.
    ///
    /// The output signal is an opaque handle read through
    /// [`CellKind::RamOut`] cells. Reads are combinational on the address
    /// (read-through); writes occur on the rising clock edge.
    Ram {
        /// Number of address bits (capacity = `2^addr_bits` words).
        addr_bits: u8,
        /// Word width in bits.
        data_bits: u8,
    },
    /// One read-data bit of a RAM macro; single input = the RAM handle.
    RamOut {
        /// Which data bit of the word this cell reads.
        bit: u8,
    },
}

impl CellKind {
    /// True for cells whose output is a pure function of current inputs.
    ///
    /// `Ram`/`RamOut` are excluded (state), as are latches and flip-flops.
    pub fn is_combinational(self) -> bool {
        !matches!(
            self,
            CellKind::Dff
                | CellKind::DffRl
                | CellKind::DffRh
                | CellKind::Sdff
                | CellKind::SdffRl
                | CellKind::LatchLow
                | CellKind::ClockGate
                | CellKind::Ram { .. }
                | CellKind::RamOut { .. }
        )
    }

    /// True for edge-triggered flip-flop kinds (scan or not).
    pub fn is_flop(self) -> bool {
        matches!(
            self,
            CellKind::Dff | CellKind::DffRl | CellKind::DffRh | CellKind::Sdff | CellKind::SdffRl
        )
    }

    /// True for mux-scan flip-flop kinds.
    pub fn is_scan_flop(self) -> bool {
        matches!(self, CellKind::Sdff | CellKind::SdffRl)
    }

    /// Pin index of the clock input for clocked kinds, if any.
    pub fn clock_pin(self) -> Option<usize> {
        match self {
            CellKind::Dff
            | CellKind::DffRl
            | CellKind::DffRh
            | CellKind::Sdff
            | CellKind::SdffRl => Some(1),
            CellKind::ClockGate | CellKind::Ram { .. } => Some(0),
            _ => None,
        }
    }

    /// Expected input count, or `None` when variable (n-ary gates, RAM).
    pub fn fixed_arity(self) -> Option<usize> {
        match self {
            CellKind::Input | CellKind::Tie0 | CellKind::Tie1 | CellKind::TieX => Some(0),
            CellKind::Output | CellKind::Buf | CellKind::Not | CellKind::RamOut { .. } => Some(1),
            CellKind::LatchLow | CellKind::ClockGate => Some(2),
            CellKind::Mux2 => Some(3),
            CellKind::Dff => Some(2),
            CellKind::DffRl | CellKind::DffRh => Some(3),
            CellKind::Sdff => Some(4),
            CellKind::SdffRl => Some(5),
            CellKind::Ram {
                addr_bits,
                data_bits,
            } => Some(2 + addr_bits as usize + data_bits as usize),
            CellKind::And
            | CellKind::Nand
            | CellKind::Or
            | CellKind::Nor
            | CellKind::Xor
            | CellKind::Xnor => None,
        }
    }

    /// Minimum input count for kinds with variable arity.
    pub fn min_arity(self) -> usize {
        self.fixed_arity().unwrap_or(2)
    }

    /// Evaluates a combinational kind over input values.
    ///
    /// Returns `None` for sequential/macro kinds (their next-state
    /// semantics live in the simulators).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong arity for a combinational kind.
    pub fn eval_comb(self, inputs: &[Logic]) -> Option<Logic> {
        let v = match self {
            CellKind::Input => return None,
            CellKind::Tie0 => Logic::Zero,
            CellKind::Tie1 => Logic::One,
            CellKind::TieX => Logic::X,
            CellKind::Output | CellKind::Buf => {
                assert_eq!(inputs.len(), 1, "{self} arity");
                inputs[0].drive()
            }
            CellKind::Not => {
                assert_eq!(inputs.len(), 1, "{self} arity");
                !inputs[0]
            }
            CellKind::And => Logic::and_all(inputs.iter().copied()),
            CellKind::Nand => !Logic::and_all(inputs.iter().copied()),
            CellKind::Or => Logic::or_all(inputs.iter().copied()),
            CellKind::Nor => !Logic::or_all(inputs.iter().copied()),
            CellKind::Xor => Logic::xor_all(inputs.iter().copied()),
            CellKind::Xnor => !Logic::xor_all(inputs.iter().copied()),
            CellKind::Mux2 => {
                assert_eq!(inputs.len(), 3, "{self} arity");
                Logic::mux2(inputs[0], inputs[1], inputs[2])
            }
            _ => return None,
        };
        Some(v)
    }

    /// Short lowercase mnemonic (stable; used by the Verilog/DOT writers).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CellKind::Input => "input",
            CellKind::Output => "output",
            CellKind::Tie0 => "tie0",
            CellKind::Tie1 => "tie1",
            CellKind::TieX => "tiex",
            CellKind::Buf => "buf",
            CellKind::Not => "not",
            CellKind::And => "and",
            CellKind::Nand => "nand",
            CellKind::Or => "or",
            CellKind::Nor => "nor",
            CellKind::Xor => "xor",
            CellKind::Xnor => "xnor",
            CellKind::Mux2 => "mux2",
            CellKind::Dff => "dff",
            CellKind::DffRl => "dff_rl",
            CellKind::DffRh => "dff_rh",
            CellKind::Sdff => "sdff",
            CellKind::SdffRl => "sdff_rl",
            CellKind::LatchLow => "latch_low",
            CellKind::ClockGate => "cgc",
            CellKind::Ram { .. } => "ram",
            CellKind::RamOut { .. } => "ram_out",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::*;

    #[test]
    fn gate_truth_tables() {
        assert_eq!(CellKind::And.eval_comb(&[One, One, One]), Some(One));
        assert_eq!(CellKind::And.eval_comb(&[One, Zero, X]), Some(Zero));
        assert_eq!(CellKind::Nand.eval_comb(&[One, One]), Some(Zero));
        assert_eq!(CellKind::Or.eval_comb(&[Zero, Zero]), Some(Zero));
        assert_eq!(CellKind::Nor.eval_comb(&[Zero, X]), Some(X));
        assert_eq!(CellKind::Xor.eval_comb(&[One, One, One]), Some(One));
        assert_eq!(CellKind::Xnor.eval_comb(&[One, Zero]), Some(Zero));
        assert_eq!(CellKind::Not.eval_comb(&[X]), Some(X));
        assert_eq!(CellKind::Buf.eval_comb(&[Z]), Some(X));
    }

    #[test]
    fn sequential_kinds_do_not_eval() {
        assert_eq!(CellKind::Dff.eval_comb(&[One, Zero]), None);
        assert_eq!(CellKind::LatchLow.eval_comb(&[One, Zero]), None);
        assert_eq!(CellKind::ClockGate.eval_comb(&[One, One]), None);
        assert_eq!(
            CellKind::Ram {
                addr_bits: 2,
                data_bits: 4
            }
            .eval_comb(&[]),
            None
        );
    }

    #[test]
    fn arity_metadata_is_consistent() {
        assert_eq!(CellKind::Mux2.fixed_arity(), Some(3));
        assert_eq!(CellKind::SdffRl.fixed_arity(), Some(5));
        assert_eq!(CellKind::And.fixed_arity(), None);
        assert_eq!(CellKind::And.min_arity(), 2);
        assert_eq!(
            CellKind::Ram {
                addr_bits: 3,
                data_bits: 8
            }
            .fixed_arity(),
            Some(2 + 3 + 8)
        );
    }

    #[test]
    fn classification_helpers() {
        assert!(CellKind::Sdff.is_flop());
        assert!(CellKind::Sdff.is_scan_flop());
        assert!(!CellKind::Dff.is_scan_flop());
        assert!(CellKind::And.is_combinational());
        assert!(!CellKind::ClockGate.is_combinational());
        assert_eq!(CellKind::Dff.clock_pin(), Some(1));
        assert_eq!(CellKind::ClockGate.clock_pin(), Some(0));
        assert_eq!(CellKind::And.clock_pin(), None);
    }
}
