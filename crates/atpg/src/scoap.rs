//! SCOAP-style testability measures: 0/1-controllability costs used to
//! steer PODEM's backtrace toward the cheapest justification paths.
//!
//! Costs are the classic Goldstein measures, computed to a fixpoint
//! over the sequential netlist (saturating; `INF` marks uncontrollable
//! values such as constrained pins, RAM read data and masked sources).
//! Scan flops cost 1 to either value (one scan-load bit); non-scan
//! flops inherit their D-cone cost plus a capture-cycle penalty.

use occ_fsim::CaptureModel;
use occ_netlist::{CellId, CellKind, Logic};

/// Saturating "impossible" cost.
pub const INF: u32 = u32::MAX / 4;

/// Per-node 0/1 controllability costs.
#[derive(Debug, Clone)]
pub struct Controllability {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
}

impl Controllability {
    /// Computes controllability for a bound model.
    pub fn compute(model: &CaptureModel<'_>) -> Self {
        let nl = model.netlist();
        let n = nl.len();
        let mut cc0 = vec![INF; n];
        let mut cc1 = vec![INF; n];

        let forced: std::collections::HashMap<CellId, Logic> =
            model.forced().iter().copied().collect();
        let masked: std::collections::HashSet<CellId> = model.masked().iter().copied().collect();
        let free: std::collections::HashSet<CellId> = model.free_pis().iter().copied().collect();

        // Sources.
        for (id, cell) in nl.iter() {
            match cell.kind() {
                CellKind::Input => {
                    if masked.contains(&id) {
                        // stays INF
                    } else if let Some(v) = forced.get(&id) {
                        match v {
                            Logic::Zero => cc0[id.index()] = 0,
                            Logic::One => cc1[id.index()] = 0,
                            _ => {}
                        }
                    } else if free.contains(&id) {
                        cc0[id.index()] = 1;
                        cc1[id.index()] = 1;
                    }
                }
                CellKind::Tie0 => cc0[id.index()] = 0,
                CellKind::Tie1 => cc1[id.index()] = 0,
                _ => {}
            }
        }

        // Fixpoint over combinational order + flops (few rounds suffice;
        // costs only decrease).
        for _round in 0..6 {
            let mut changed = false;
            for &id in nl.levelization().order() {
                let (c0, c1) = eval_cc(nl, id, &cc0, &cc1);
                if c0 < cc0[id.index()] {
                    cc0[id.index()] = c0;
                    changed = true;
                }
                if c1 < cc1[id.index()] {
                    cc1[id.index()] = c1;
                    changed = true;
                }
            }
            for info in model.flops() {
                let idx = info.cell.index();
                let (d0, d1) = if info.is_scan {
                    (1, 1)
                } else {
                    let d = nl.cell(info.cell).flop_d();
                    (
                        cc0[d.index()].saturating_add(8).min(INF),
                        cc1[d.index()].saturating_add(8).min(INF),
                    )
                };
                if d0 < cc0[idx] {
                    cc0[idx] = d0;
                    changed = true;
                }
                if d1 < cc1[idx] {
                    cc1[idx] = d1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Controllability { cc0, cc1 }
    }

    /// Cost of driving `id` to `value`.
    #[inline]
    pub fn cost(&self, id: CellId, value: bool) -> u32 {
        if value {
            self.cc1[id.index()]
        } else {
            self.cc0[id.index()]
        }
    }
}

fn eval_cc(nl: &occ_netlist::Netlist, id: CellId, cc0: &[u32], cc1: &[u32]) -> (u32, u32) {
    let cell = nl.cell(id);
    let add = |a: u32, b: u32| a.saturating_add(b).min(INF);
    let ins = cell.inputs();
    match cell.kind() {
        CellKind::Buf | CellKind::Output => (cc0[ins[0].index()], cc1[ins[0].index()]),
        CellKind::Not => (cc1[ins[0].index()], cc0[ins[0].index()]),
        CellKind::And | CellKind::Nand => {
            let zero = ins.iter().map(|i| cc0[i.index()]).min().unwrap_or(INF);
            let one = ins.iter().fold(0u32, |acc, i| add(acc, cc1[i.index()]));
            let (a0, a1) = (add(zero, 1), add(one, 1));
            if cell.kind() == CellKind::Nand {
                (a1, a0)
            } else {
                (a0, a1)
            }
        }
        CellKind::Or | CellKind::Nor => {
            let one = ins.iter().map(|i| cc1[i.index()]).min().unwrap_or(INF);
            let zero = ins.iter().fold(0u32, |acc, i| add(acc, cc0[i.index()]));
            let (a0, a1) = (add(zero, 1), add(one, 1));
            if cell.kind() == CellKind::Nor {
                (a1, a0)
            } else {
                (a0, a1)
            }
        }
        CellKind::Xor | CellKind::Xnor => {
            // Pairwise fold for the n-ary case.
            let mut z = cc0[ins[0].index()];
            let mut o = cc1[ins[0].index()];
            for i in &ins[1..] {
                let (i0, i1) = (cc0[i.index()], cc1[i.index()]);
                let nz = add(z, i0).min(add(o, i1));
                let no = add(z, i1).min(add(o, i0));
                z = nz;
                o = no;
            }
            let (a0, a1) = (add(z, 1), add(o, 1));
            if cell.kind() == CellKind::Xnor {
                (a1, a0)
            } else {
                (a0, a1)
            }
        }
        CellKind::Mux2 => {
            let (s, d0, d1) = (ins[0], ins[1], ins[2]);
            let zero =
                add(cc0[s.index()], cc0[d0.index()]).min(add(cc1[s.index()], cc0[d1.index()]));
            let one =
                add(cc0[s.index()], cc1[d0.index()]).min(add(cc1[s.index()], cc1[d1.index()]));
            (add(zero, 1), add(one, 1))
        }
        _ => (INF, INF),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_fsim::ClockBinding;
    use occ_netlist::NetlistBuilder;

    #[test]
    fn basic_costs_make_sense() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let a = b.input("a");
        let c = b.input("b");
        let and = b.and2(a, c);
        let or = b.or2(a, c);
        let ff = b.sdff(and, clk, se, si);
        let nf = b.dff(or, clk);
        let g = b.and2(ff, nf);
        b.output("q", g);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        binding.add_domain("d", clk);
        binding.constrain(se, Logic::Zero);
        binding.mask(si);
        let m = CaptureModel::new(&nl, binding).unwrap();
        let cc = Controllability::compute(&m);

        // AND to 1 needs both inputs: costlier than to 0.
        assert!(cc.cost(and, true) > cc.cost(and, false));
        // OR is the dual.
        assert!(cc.cost(or, false) > cc.cost(or, true));
        // Scan flop costs 1 either way.
        assert_eq!(cc.cost(ff, false), 1);
        assert_eq!(cc.cost(ff, true), 1);
        // Non-scan flop costs more than the scan flop.
        assert!(cc.cost(nf, true) > cc.cost(ff, true));
        // Constrained scan-enable: free to 0, impossible to 1.
        assert_eq!(cc.cost(se, false), 0);
        assert!(cc.cost(se, true) >= INF);
        // Masked scan-in: impossible both ways.
        assert!(cc.cost(si, false) >= INF);
    }
}
