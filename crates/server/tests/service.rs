//! Cache-correctness suite for the in-process [`FlowService`].
//!
//! The cache's contract is *invisibility*: a warm job must produce a
//! report byte-identical to a cold one (modulo wall-clock timings),
//! under concurrency, and under eviction pressure. Reports are
//! compared through their canonical JSON with the two volatile
//! members (`stages`, `total_seconds`) stripped at every depth —
//! everything else, down to per-kernel event counts, must match.

use occ_atpg::AtpgOptions;
use occ_core::ClockingMode;
use occ_flow::FlowReport;
use occ_lint::LintGate;
use occ_server::{FlowService, JobSpec, Json, SHARDS};
use occ_soc::SocConfig;
use std::sync::Arc;

/// Canonical semantic form of a report: JSON minus wall-clock members.
fn canonical(report: &FlowReport) -> String {
    Json::parse(&report.to_json())
        .expect("report JSON parses")
        .without_keys(&["stages", "total_seconds"])
        .to_string()
}

fn quick_job(seed: u64, mode: ClockingMode) -> JobSpec {
    let mut job = JobSpec::new(SocConfig::tiny(seed));
    job.clocking = mode;
    job.mask_bidi = true;
    job.atpg = AtpgOptions {
        random_patterns: 32,
        backtrack_limit: 12,
        ..AtpgOptions::default()
    };
    job
}

#[test]
fn cold_and_warm_reports_are_byte_identical() {
    let service = FlowService::new(0);
    // Timing + lint on: exercises every cached artifact (graph,
    // procedures, delay table) plus the optional report blocks.
    let mut job = quick_job(11, ClockingMode::SimpleCpf);
    job.timing = true;
    job.lint = Some(LintGate::Warn);

    let cold = service.submit(&job).unwrap();
    assert!(!cold.warm);
    assert_eq!(cold.cache.procedures_hit, Some(false));
    assert_eq!(cold.cache.delays_hit, Some(false));

    let warm = service.submit(&job).unwrap();
    assert!(warm.warm, "{:?}", warm.cache);
    assert_eq!(warm.cache.procedures_hit, Some(true));
    assert_eq!(warm.cache.delays_hit, Some(true));

    assert_eq!(
        canonical(cold.report.as_ref().unwrap()),
        canonical(warm.report.as_ref().unwrap()),
    );

    // Warm jobs skip the compile stages: the bind-model stage of the
    // warm run must be an order of magnitude cheaper than compiling —
    // asserted structurally via the cache hit flags above, and the
    // stage list still names every stage (timings change, shape
    // doesn't).
    let stats = service.cache_stats();
    assert_eq!(stats.design.misses, 1);
    assert_eq!(stats.design.hits, 1);
    assert_eq!(stats.procedures.misses, 1);
    assert_eq!(stats.delays.misses, 1);
}

#[test]
fn warm_jobs_share_procedures_across_designs() {
    // Two different designs, same clocking/fault model/domain count:
    // the procedures artifact is shared (it is keyed by what
    // determines it, not by the design).
    let service = FlowService::new(0);
    service
        .submit(&quick_job(1, ClockingMode::SimpleCpf))
        .unwrap();
    let second = service
        .submit(&quick_job(2, ClockingMode::SimpleCpf))
        .unwrap();
    assert!(!second.cache.design_hit, "distinct design must miss");
    assert_eq!(
        second.cache.procedures_hit,
        Some(true),
        "same-shape procedures must hit"
    );
    let stats = service.cache_stats();
    assert_eq!(stats.design.misses, 2);
    assert_eq!(stats.procedures.misses, 1);
}

#[test]
fn concurrent_clients_get_deterministic_results() {
    // N threads hammer one service with jobs over two designs and two
    // clocking modes. Every (design, mode) result must equal the
    // serial baseline, and the build-deduplication must hold: one
    // design miss per distinct design, ever.
    let seeds = [21u64, 22];
    let modes = [
        ClockingMode::SimpleCpf,
        ClockingMode::EnhancedCpf { max_pulses: 4 },
    ];

    // Serial baselines from a fresh service.
    let baseline_service = FlowService::new(0);
    let mut baselines = Vec::new();
    for &seed in &seeds {
        for mode in modes {
            let out = baseline_service.submit(&quick_job(seed, mode)).unwrap();
            baselines.push(((seed, mode), canonical(out.report.as_ref().unwrap())));
        }
    }
    let expect = |seed: u64, mode: ClockingMode| -> &str {
        &baselines
            .iter()
            .find(|((s, m), _)| *s == seed && *m == mode)
            .unwrap()
            .1
    };

    let service = Arc::new(FlowService::new(0));
    let mut handles = Vec::new();
    for t in 0..4usize {
        let service = Arc::clone(&service);
        handles.push(std::thread::spawn(move || {
            let mut got = Vec::new();
            for round in 0..3usize {
                let seed = seeds[(t + round) % seeds.len()];
                let mode = modes[(t + round / 2) % modes.len()];
                let out = service.submit(&quick_job(seed, mode)).unwrap();
                got.push((seed, mode, canonical(out.report.as_ref().unwrap())));
            }
            got
        }));
    }
    for handle in handles {
        for (seed, mode, json) in handle.join().expect("client thread panicked") {
            assert_eq!(json, expect(seed, mode), "seed {seed} mode {mode}");
        }
    }

    let stats = service.cache_stats();
    assert_eq!(
        stats.design.misses,
        seeds.len() as u64,
        "concurrent same-design builds must deduplicate: {stats:?}"
    );
    assert_eq!(stats.procedures.misses, modes.len() as u64, "{stats:?}");
}

#[test]
fn eviction_under_tiny_budget_never_corrupts_results() {
    // A budget far below one design artifact: every insert evicts the
    // previous tenant of its shard. Results must still match the
    // unlimited-cache baselines exactly — in-flight jobs hold their
    // own Arcs, and a re-miss rebuilds identical artifacts.
    let unlimited = FlowService::new(0);
    let tiny = FlowService::new(SHARDS); // 1 byte per shard
    let seeds = [31u64, 32];
    for round in 0..3 {
        for &seed in &seeds {
            let job = quick_job(seed, ClockingMode::SimpleCpf);
            let want = canonical(unlimited.submit(&job).unwrap().report.as_ref().unwrap());
            let got = canonical(tiny.submit(&job).unwrap().report.as_ref().unwrap());
            assert_eq!(got, want, "round {round} seed {seed}");
        }
    }
    let stats = tiny.cache_stats();
    assert!(
        stats.design.evictions > 0,
        "budget never evicted: {stats:?}"
    );
    // Unlimited cache: 2 misses. Tiny cache: every lookup after an
    // eviction re-misses; the counters stay coherent (hits + misses ==
    // lookups).
    assert_eq!(
        stats.design.hits + stats.design.misses,
        (seeds.len() * 3) as u64,
        "{stats:?}"
    );
}
