//! Fault status tracking and coverage statistics (the Table 1 columns).

use crate::{Fault, FaultUniverse};
use std::collections::HashMap;
use std::fmt;

/// ATPG/fault-simulation status of one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultStatus {
    /// Not yet processed or detected.
    #[default]
    Undetected,
    /// Detected by the pattern with the given index.
    Detected {
        /// Index of the detecting pattern in the generated pattern set.
        pattern: u32,
    },
    /// Proven untestable by ATPG (search space exhausted without abort).
    Untestable,
    /// ATPG gave up (backtrack limit) — counted against test efficiency,
    /// the paper's "0.3 % aborted".
    Aborted,
    /// Blocked by mode constraints before search (e.g. a cell forced to
    /// a constant by the clocking mode).
    Constrained,
}

impl FaultStatus {
    /// True for any `Detected` status.
    pub fn is_detected(self) -> bool {
        matches!(self, FaultStatus::Detected { .. })
    }
}

/// Structural classification of an undetected fault — the fault
/// *grouping* the paper's conclusions propose as future ATPG work
/// ("classify and group these faults as non-functional scan path,
/// low-speed and other faults that cannot cause the device to fail
/// at-speed operation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultClass {
    /// Ordinary undetected fault with no structural excuse.
    Plain,
    /// Only observable through a masked primary output.
    PoMaskedOnly,
    /// Launchable only from a held primary input.
    PiHeldOnly,
    /// Lies in a cone crossing clock domains (needs inter-domain test).
    CrossDomain,
    /// Depends on uninitialized non-scan state.
    NonScanDependent,
    /// Depends on RAM read data (needs RAM-sequential patterns).
    RamDependent,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultClass::Plain => "plain",
            FaultClass::PoMaskedOnly => "po-masked-only",
            FaultClass::PiHeldOnly => "pi-held-only",
            FaultClass::CrossDomain => "cross-domain",
            FaultClass::NonScanDependent => "non-scan-dependent",
            FaultClass::RamDependent => "ram-dependent",
        };
        f.write_str(s)
    }
}

/// A fault universe paired with mutable per-fault status.
///
/// # Examples
///
/// ```
/// use occ_netlist::NetlistBuilder;
/// use occ_fault::{FaultUniverse, FaultList, FaultStatus};
///
/// # fn main() -> Result<(), occ_netlist::BuildError> {
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a");
/// let y = b.not(a);
/// b.output("y", y);
/// let nl = b.finish()?;
/// let mut list = FaultList::new(FaultUniverse::stuck_at(&nl));
/// let f = list.faults()[0];
/// list.set_status(f, FaultStatus::Detected { pattern: 0 });
/// assert_eq!(list.report().detected, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FaultList {
    universe: FaultUniverse,
    status: Vec<FaultStatus>,
    index: HashMap<Fault, usize>,
    class: Vec<Option<FaultClass>>,
}

impl FaultList {
    /// Wraps a universe with all faults `Undetected`.
    pub fn new(universe: FaultUniverse) -> Self {
        let n = universe.faults().len();
        let index = universe
            .faults()
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, i))
            .collect();
        FaultList {
            universe,
            status: vec![FaultStatus::Undetected; n],
            index,
            class: vec![None; n],
        }
    }

    /// The collapsed fault list.
    pub fn faults(&self) -> &[Fault] {
        self.universe.faults()
    }

    /// The underlying universe.
    pub fn universe(&self) -> &FaultUniverse {
        &self.universe
    }

    /// Current status of a fault.
    ///
    /// # Panics
    ///
    /// Panics if the fault is not in this list.
    pub fn status(&self, fault: Fault) -> FaultStatus {
        self.status[self.index_of(fault)]
    }

    /// Sets the status of a fault. Detected faults are never demoted
    /// back to undetected (the usual ATPG monotonicity).
    ///
    /// # Panics
    ///
    /// Panics if the fault is not in this list.
    pub fn set_status(&mut self, fault: Fault, status: FaultStatus) {
        let i = self.index_of(fault);
        if self.status[i].is_detected() && !status.is_detected() {
            return;
        }
        self.status[i] = status;
    }

    /// Assigns a structural class to a fault (for the AU grouping
    /// report).
    pub fn set_class(&mut self, fault: Fault, class: FaultClass) {
        let i = self.index_of(fault);
        self.class[i] = Some(class);
    }

    /// The assigned class, if any.
    pub fn class(&self, fault: Fault) -> Option<FaultClass> {
        self.class[self.index_of(fault)]
    }

    /// Iterates `(fault, status)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Fault, FaultStatus)> + '_ {
        self.universe
            .faults()
            .iter()
            .zip(self.status.iter())
            .map(|(&f, &s)| (f, s))
    }

    /// Faults still undetected (and not ruled out).
    pub fn undetected(&self) -> impl Iterator<Item = Fault> + '_ {
        self.iter()
            .filter(|(_, s)| matches!(s, FaultStatus::Undetected))
            .map(|(f, _)| f)
    }

    /// Builds the coverage report.
    pub fn report(&self) -> CoverageReport {
        let mut r = CoverageReport {
            total: self.status.len(),
            ..CoverageReport::default()
        };
        for (i, s) in self.status.iter().enumerate() {
            match s {
                FaultStatus::Detected { .. } => r.detected += 1,
                FaultStatus::Untestable => r.untestable += 1,
                FaultStatus::Aborted => r.aborted += 1,
                FaultStatus::Constrained => r.constrained += 1,
                FaultStatus::Undetected => r.undetected += 1,
            }
            if !s.is_detected() {
                if let Some(c) = self.class[i] {
                    *r.class_histogram.entry(c).or_insert(0) += 1;
                }
            }
        }
        r
    }

    fn index_of(&self, fault: Fault) -> usize {
        *self
            .index
            .get(&fault)
            .unwrap_or_else(|| panic!("fault {fault} not in list"))
    }
}

/// Coverage and efficiency statistics — the numbers reported per row of
/// the paper's Table 1.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoverageReport {
    /// Collapsed fault count.
    pub total: usize,
    /// Faults detected by at least one pattern.
    pub detected: usize,
    /// Proven untestable.
    pub untestable: usize,
    /// Aborted by the backtrack limit.
    pub aborted: usize,
    /// Ruled out by mode constraints.
    pub constrained: usize,
    /// Remaining undetected.
    pub undetected: usize,
    /// Histogram of structural classes over non-detected faults.
    pub class_histogram: std::collections::BTreeMap<FaultClass, usize>,
}

impl CoverageReport {
    /// Test coverage in percent: `detected / total` — the column the
    /// paper labels "TC". Untestable faults count against coverage,
    /// matching the paper's accounting (98.7 % detected + 1 % untestable
    /// + 0.3 % aborted = 100 %).
    pub fn coverage_pct(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 * self.detected as f64 / self.total as f64
    }

    /// ATPG efficiency in percent: `(detected + untestable + constrained)
    /// / total` — the share of faults with a definitive answer.
    pub fn efficiency_pct(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 * (self.detected + self.untestable + self.constrained) as f64 / self.total as f64
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "coverage {:.2}% efficiency {:.2}% (total {}, detected {}, untestable {}, aborted {}, constrained {}, undetected {})",
            self.coverage_pct(),
            self.efficiency_pct(),
            self.total,
            self.detected,
            self.untestable,
            self.aborted,
            self.constrained,
            self.undetected
        )?;
        for (c, n) in &self.class_histogram {
            writeln!(f, "  class {c}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultUniverse;
    use occ_netlist::NetlistBuilder;

    fn small_list() -> FaultList {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.and2(a, c);
        b.output("y", g);
        FaultList::new(FaultUniverse::stuck_at(&b.finish().unwrap()))
    }

    #[test]
    fn detection_is_monotone() {
        let mut list = small_list();
        let f = list.faults()[0];
        list.set_status(f, FaultStatus::Detected { pattern: 3 });
        list.set_status(f, FaultStatus::Aborted);
        assert!(list.status(f).is_detected());
    }

    #[test]
    fn report_adds_up() {
        let mut list = small_list();
        let faults: Vec<_> = list.faults().to_vec();
        assert_eq!(faults.len(), 4);
        list.set_status(faults[0], FaultStatus::Detected { pattern: 0 });
        list.set_status(faults[1], FaultStatus::Untestable);
        list.set_status(faults[2], FaultStatus::Aborted);
        let r = list.report();
        assert_eq!(r.total, 4);
        assert_eq!(r.detected, 1);
        assert_eq!(r.untestable, 1);
        assert_eq!(r.aborted, 1);
        assert_eq!(r.undetected, 1);
        assert!((r.coverage_pct() - 25.0).abs() < 1e-9);
        assert!((r.efficiency_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn class_histogram_counts_undetected_only() {
        let mut list = small_list();
        let faults: Vec<_> = list.faults().to_vec();
        list.set_class(faults[0], FaultClass::CrossDomain);
        list.set_class(faults[1], FaultClass::CrossDomain);
        list.set_status(faults[1], FaultStatus::Detected { pattern: 0 });
        let r = list.report();
        assert_eq!(r.class_histogram[&FaultClass::CrossDomain], 1);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let list = small_list();
        let text = list.report().to_string();
        assert!(text.contains("total 4"));
        assert!(text.contains("coverage 0.00%"));
    }
}
