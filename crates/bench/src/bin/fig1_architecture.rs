//! Reproduces Figure 1: the device with one CPF per clock domain.
//!
//! Prints the architecture report; `--dot` additionally prints the
//! Graphviz drawing of the CPF block.

use occ_bench::fig1_report;

fn main() {
    let dot_wanted = std::env::args().any(|a| a == "--dot");
    let (text, dot, _device) = fig1_report(20050307, 120);
    println!("{text}");
    if dot_wanted {
        println!("{dot}");
    }
}
