//! # occ-bench — the Table 1 / figure experiment harness
//!
//! Drives the whole workspace to regenerate every table and figure of
//! *Beck et al., DATE 2005*:
//!
//! * [`run_table1`] — the five ATPG experiments (a)–(e) on one seeded
//!   SOC, swept through an in-process [`occ_server::FlowService`] so
//!   the design is compiled once and every later row reuses the cached
//!   graph, reporting test coverage and pattern count per row plus the
//!   paper's qualitative shape checks;
//! * [`fig1_report`] — the device architecture (SOC + per-domain CPFs);
//! * [`fig2_waveforms`] — the delay-test clocking of both domains
//!   (shift → launch/capture burst → shift), simulated on the real
//!   gate-level device;
//! * [`fig3_report`] — the CPF schematic (gate list + Verilog);
//! * [`fig4_waveforms`] — the CPF timing diagram.
//!
//! Binaries `table1`, `fig1_architecture`, `fig2_waveform`,
//! `fig3_cpf_netlist` and `fig4_cpf_waveform` print these to stdout;
//! Criterion benches in `benches/` time the same entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiments;
mod figures;

pub use experiments::{
    job_spec, matrix_sources, run_experiment, run_experiment_service, run_sources_matrix,
    run_table1, ExperimentId, ExperimentRow, MatrixCell, ParseExperimentIdError, SourcesMatrix,
    Table1, Table1Options, MATRIX_MODES,
};
pub use figures::{fig1_report, fig2_waveforms, fig3_report, fig4_waveforms};
