//! Figure reproductions: architecture (Fig 1), delay-test clocking
//! (Fig 2), CPF schematic (Fig 3) and CPF waveform (Fig 4).

use occ_core::{AteExpansion, AteTiming, ClockPulseFilter, CpfBehavior, CpfConfig, Pll, PllConfig};
use occ_netlist::{Logic, NetlistStats};
use occ_sim::{render_ascii, AsciiOptions, DelayModel, EventSim, Time, Waveform};
use occ_soc::{assemble_device, generate, Device, SocConfig};
use std::fmt::Write as _;

/// Figure 1: the device with one CPF per clock domain.
///
/// Returns a text report of the assembled architecture plus the DOT
/// drawing of one CPF (the full device graph is too large to plot
/// usefully).
pub fn fig1_report(seed: u64, flops_per_domain: usize) -> (String, String, Device) {
    let soc = generate(&SocConfig::paper_like(seed, flops_per_domain));
    let pll = Pll::new(PllConfig::paper());
    let device = assemble_device(&soc, pll);

    let mut text = String::new();
    let _ = writeln!(text, "Figure 1 — device with clock pulse filters");
    let _ = writeln!(text, "==========================================");
    let soc_stats = NetlistStats::of(soc.netlist());
    let dev_stats = NetlistStats::of(device.netlist());
    let _ = writeln!(text, "SOC ({}):", soc.netlist().name());
    let _ = write!(text, "{soc_stats}");
    let _ = writeln!(text, "scan chains   : {}", soc.chains().chains().len());
    let _ = writeln!(text, "chain length  : {}", soc.chains().max_chain_len());
    let _ = writeln!(text, "non-scan cells: {}", soc.non_scan_names().len());
    let _ = writeln!(text);
    let _ = writeln!(
        text,
        "device adds {} cells: one 10-gate CPF per domain spliced between",
        device.netlist().len() - soc.netlist().len()
    );
    let _ = writeln!(
        text,
        "the PLL clocks and the domain clock trees, controlled by scan_en/scan_clk."
    );
    for (d, ports) in device.cpf_ports().iter().enumerate() {
        let dom = &soc.config().domains[d];
        let _ = writeln!(
            text,
            "  domain {} ({} MHz): pll_clk={} clk_out={}",
            dom.name, dom.freq_mhz, ports.pll_clk, ports.clk_out
        );
    }
    let _ = write!(text, "\ndevice totals:\n{dev_stats}");

    let cpf = ClockPulseFilter::generate(&CpfConfig::paper());
    let dot = cpf.netlist().to_dot();
    (text, dot, device)
}

/// Figure 2 results: the rendered two-domain delay-test clock waveform
/// plus per-domain pulse counts inside the capture window.
#[derive(Debug)]
pub struct Fig2 {
    /// ASCII waveform (scan_en, scan_clk, both domain clocks).
    pub ascii: String,
    /// VCD of the same trace.
    pub vcd: String,
    /// At-speed rising edges per domain within the capture window.
    pub pulses_per_domain: Vec<usize>,
    /// Capture window (from scan_en fall to scan_en rise).
    pub window: (Time, Time),
}

/// Figure 2: shift → at-speed launch/capture on both domains → shift,
/// simulated on the real gate-level device (SOC + CPFs).
pub fn fig2_waveforms(seed: u64) -> Fig2 {
    let soc = generate(&SocConfig::tiny(seed));
    let pll = Pll::new(PllConfig::paper());
    let device = assemble_device(&soc, pll);
    let nl = device.netlist();
    let pll = device.pll();

    // Protocol timing: 4 shift pulses, capture episode, 3 shift pulses.
    let shift_period: Time = 50_000; // 20 MHz scan clock
    let behavior = CpfBehavior::new(&CpfConfig::paper());
    let timing = AteTiming {
        shift_period_ps: shift_period,
        settle_ps: 30_000,
    };
    let shift1_start: Time = 100_000;
    let shift1_end = shift1_start + 4 * shift_period;
    // Use the slower domain to size the episode (both CPFs share it).
    let ep = AteExpansion::expand(&behavior, pll, 0, &timing, shift1_end);
    let shift2_start = ep.scan_en_rise + 50_000;
    let end = shift2_start + 3 * shift_period + 100_000;

    let scan_clk_wave = {
        let mut steps = vec![(0, Logic::Zero)];
        for k in 0..4 {
            let r = shift1_start + k * shift_period;
            steps.push((r, Logic::One));
            steps.push((r + shift_period / 2, Logic::Zero));
        }
        steps.push((ep.trigger_rise, Logic::One));
        steps.push((ep.trigger_fall, Logic::Zero));
        for k in 0..3 {
            let r = shift2_start + k * shift_period;
            steps.push((r, Logic::One));
            steps.push((r + shift_period / 2, Logic::Zero));
        }
        Waveform::steps(&steps)
    };
    let scan_en_wave = Waveform::steps(&[
        (0, Logic::One),
        (ep.scan_en_fall, Logic::Zero),
        (ep.scan_en_rise, Logic::One),
    ]);

    let mut sim = EventSim::new(nl, DelayModel::default());
    let clk_outs: Vec<_> = device.cpf_ports().iter().map(|p| p.clk_out).collect();
    sim.watch(device.scan_en());
    sim.watch(device.scan_clk());
    for &c in &clk_outs {
        sim.watch(c);
    }
    for (d, &p) in device.pll_clk_ports().iter().enumerate() {
        sim.drive(p, pll.domain_waveform(d, end));
    }
    sim.drive(device.scan_clk(), scan_clk_wave);
    sim.drive(device.scan_en(), scan_en_wave);
    sim.run_until(end);

    let pulses_per_domain: Vec<usize> = clk_outs
        .iter()
        .map(|&c| {
            sim.trace()
                .rising_edges_in(c, ep.scan_en_fall, ep.scan_en_rise)
        })
        .collect();

    let mut signals = vec![device.scan_en(), device.scan_clk()];
    signals.extend(clk_outs.iter().copied());
    let ascii = render_ascii(
        sim.trace(),
        &signals,
        &AsciiOptions::window(0, end, end / 180),
    );
    let vcd = sim.trace().to_vcd(nl.name());
    Fig2 {
        ascii,
        vcd,
        pulses_per_domain,
        window: (ep.scan_en_fall, ep.scan_en_rise),
    }
}

/// Figure 3: the CPF gate-level schematic as a text report, its
/// structural Verilog and its DOT drawing.
pub fn fig3_report() -> (String, String, String) {
    let cpf = ClockPulseFilter::generate(&CpfConfig::paper());
    let nl = cpf.netlist();
    let mut text = String::new();
    let _ = writeln!(text, "Figure 3 — clock pulse filter schematic");
    let _ = writeln!(text, "=======================================");
    let _ = writeln!(
        text,
        "\"The entire CPF consists of ten standard digital logic gates per clock domain only.\""
    );
    let _ = writeln!(text, "generated gate count: {}", nl.logic_gate_count());
    let _ = writeln!(text);
    for (id, cell) in nl.iter() {
        if let Some(name) = cell.name() {
            if !matches!(
                cell.kind(),
                occ_netlist::CellKind::Input | occ_netlist::CellKind::Output
            ) {
                let _ = writeln!(text, "  {id:>4}  {:<10} {name}", cell.kind().to_string());
            }
        }
    }
    let _ = writeln!(text);
    let _ = writeln!(
        text,
        "pulse window: opens after {} PLL cycles, passes {} pulses",
        cpf.config().latency_cycles(),
        cpf.config().pulse_count()
    );
    (text, cpf.to_verilog(), nl.to_dot())
}

/// Figure 4 results.
#[derive(Debug)]
pub struct Fig4 {
    /// ASCII rendering of the CPF waveform diagram.
    pub ascii: String,
    /// VCD of the same trace.
    pub vcd: String,
    /// Rising edges of `clk_out` inside the capture window (paper: 2).
    pub pulse_count: usize,
    /// Narrowest positive pulse on `clk_out` in ps (glitch check).
    pub min_pulse_width: Option<Time>,
}

/// Figure 4: the CPF waveform — `scan_en` drop, single `scan_clk`
/// trigger, three-cycle latency, exactly two released PLL pulses.
pub fn fig4_waveforms(domain: usize) -> Fig4 {
    let pll = Pll::new(PllConfig::paper());
    let cfg = CpfConfig::paper();
    let behavior = CpfBehavior::new(&cfg);
    let timing = AteTiming::relaxed();
    let ep = AteExpansion::expand(&behavior, &pll, domain, &timing, 150_000);

    let cpf = ClockPulseFilter::generate(&cfg);
    let nl = cpf.netlist();
    let ports = *cpf.ports();
    let mut sim = EventSim::new(nl, DelayModel::default());
    let clk_out = nl.find("cpf_clk_out").expect("named output mux");
    let end = ep.scan_en_rise + 100_000;
    sim.watch(ports.scan_en);
    sim.watch(ports.scan_clk);
    sim.watch(ports.pll_clk);
    sim.watch(ports.pulse_enable);
    sim.watch(clk_out);
    sim.drive(ports.pll_clk, pll.domain_waveform(domain, end));
    sim.drive(ports.scan_en, ep.scan_en_waveform());
    sim.drive(ports.scan_clk, ep.scan_clk_waveform());
    sim.run_until(end);

    let pulse_count = sim
        .trace()
        .rising_edges_in(clk_out, ep.scan_en_fall, ep.scan_en_rise);
    let min_pulse_width = sim.trace().min_positive_pulse(clk_out);
    let signals = [
        ports.scan_en,
        ports.scan_clk,
        ports.pll_clk,
        ports.pulse_enable,
        clk_out,
    ];
    // Zoom on the interesting region around the trigger and burst.
    let from = ep.scan_en_fall.saturating_sub(20_000);
    let to = (ep.expected_pulses.last().copied().unwrap_or(end) + 40_000).min(end);
    let ascii = render_ascii(
        sim.trace(),
        &signals,
        &AsciiOptions::window(from, to, (to - from) / 160),
    );
    let vcd = sim.trace().to_vcd("cpf_fig4");
    Fig4 {
        ascii,
        vcd,
        pulse_count,
        min_pulse_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_counts_ten_gates() {
        let (text, verilog, dot) = fig3_report();
        assert!(text.contains("generated gate count: 10"));
        assert!(verilog.contains("module"));
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn fig4_shows_two_clean_pulses() {
        let f = fig4_waveforms(1);
        assert_eq!(f.pulse_count, 2);
        let period = Pll::new(PllConfig::paper()).domain_period(1);
        assert!(f.min_pulse_width.unwrap() >= period / 2 - period / 20);
        assert!(f.ascii.contains("t/ps"));
        assert!(f.vcd.contains("$enddefinitions"));
    }

    #[test]
    fn fig2_bursts_both_domains() {
        let f = fig2_waveforms(42);
        assert_eq!(f.pulses_per_domain, vec![2, 2]);
        assert!(f.window.0 < f.window.1);
    }

    #[test]
    fn fig1_reports_architecture() {
        let (text, dot, device) = fig1_report(7, 40);
        assert!(text.contains("Figure 1"));
        assert!(text.contains("scan chains"));
        assert!(dot.starts_with("digraph"));
        assert_eq!(device.cpf_ports().len(), 2);
    }
}
