//! The [`TestFlow`] builder — the one orchestration surface for the
//! paper's pipeline: bind a capture model, pick a clocking mode, build
//! the named capture procedures, run ATPG through a pluggable
//! fault-sim engine, classify the leftovers and report.

use crate::artifacts::{build_procedures, validate_procedures, FlowArtifacts};
use crate::report::{LintBlock, TraceBlock};
use crate::source::{PatternSource, PatternSourceBlock};
use crate::timing::{run_quality, TimingConfig, DEFAULT_DOMAIN_PERIOD_PS};
use crate::{AtpgEngineChoice, EngineChoice, FlowError, FlowReport, Stage, StageTiming};
use occ_atpg::{
    classify_faults, run_atpg_cancellable, run_atpg_filled, AtpgEngine, AtpgKernelStats,
    AtpgOptions, AtpgResult, AtpgStats, CompiledPodem, ReferencePodem,
};
use occ_bist::{regrade_edt, run_lbist, x_source_count, ChainMap, EdtFill};
use occ_core::{ClockDomainSpec, ClockingMode};
use occ_dft::{EdtCodec, EdtConfig};
use occ_fault::{FaultModel, FaultUniverse};
use occ_fsim::{
    CancelToken, CaptureModel, ClockBinding, FaultSim, FaultSimEngine, ParallelFaultSim,
};
use occ_lint::{LintGate, Linter};
use occ_netlist::Netlist;
use occ_obs::{SpanRecorder, SpanTree};
use occ_sim::{DelayModel, Time};
use occ_soc::Soc;
use std::sync::Arc;

/// What the flow runs on: a generated [`Soc`] (the standard path) or a
/// caller-supplied netlist + clock binding (custom designs, tests).
#[derive(Debug)]
enum Source<'s> {
    Soc(&'s Soc),
    Model {
        netlist: &'s Netlist,
        binding: ClockBinding,
    },
}

/// Builder for one end-to-end test-generation pipeline run.
///
/// The seven hand-wired steps every experiment used to repeat —
/// generate SOC, insert scan, pick a clocking mode, build capture
/// procedures, run ATPG, fault-simulate, report coverage — collapse
/// into one chain:
///
/// ```no_run
/// use occ_flow::{EngineChoice, FaultKind, TestFlow};
/// use occ_core::ClockingMode;
/// use occ_atpg::AtpgOptions;
/// use occ_soc::{generate, SocConfig};
///
/// # fn main() -> Result<(), occ_flow::FlowError> {
/// let soc = generate(&SocConfig::paper_like(7, 60));
/// let report = TestFlow::new(&soc)
///     .clocking(ClockingMode::EnhancedCpf { max_pulses: 4 })
///     .fault_model(FaultKind::Transition)
///     .engine(EngineChoice::Sharded { threads: 8 })
///     .atpg(AtpgOptions::default())
///     .run()?;
/// println!("{}", report.to_json());
/// # Ok(())
/// # }
/// ```
///
/// Misconfiguration returns a typed [`FlowError`] instead of
/// panicking; see the crate docs for the full validation list.
#[derive(Debug)]
pub struct TestFlow<'s> {
    source: Source<'s>,
    clocking: ClockingMode,
    fault_model: FaultModel,
    engine: EngineChoice,
    atpg_engine: AtpgEngineChoice,
    atpg: AtpgOptions,
    mask_bidi: bool,
    timing: Option<TimingConfig>,
    lint: Option<LintGate>,
    pattern_source: PatternSource,
    artifacts: FlowArtifacts,
    cancel: CancelToken,
    trace: bool,
}

impl<'s> TestFlow<'s> {
    /// Starts a flow over a generated SOC.
    ///
    /// Defaults: ideal external clock (4 pulses), transition faults,
    /// serial fault-sim engine, compiled ATPG engine, default
    /// [`AtpgOptions`], bidi feedback unmasked.
    pub fn new(soc: &'s Soc) -> Self {
        TestFlow {
            source: Source::Soc(soc),
            clocking: ClockingMode::ExternalClock { max_pulses: 4 },
            fault_model: FaultModel::Transition,
            engine: EngineChoice::Serial,
            atpg_engine: AtpgEngineChoice::Compiled,
            atpg: AtpgOptions::default(),
            mask_bidi: false,
            timing: None,
            lint: None,
            pattern_source: PatternSource::ExternalAtpg,
            artifacts: FlowArtifacts::default(),
            cancel: CancelToken::never(),
            trace: false,
        }
    }

    /// Starts a flow over an arbitrary netlist with an explicit clock
    /// binding (custom wrappers, hand-built designs, misconfiguration
    /// tests). `mask_bidi` has no effect on this source — the binding
    /// already says what is masked.
    pub fn over(netlist: &'s Netlist, binding: ClockBinding) -> Self {
        TestFlow {
            source: Source::Model { netlist, binding },
            clocking: ClockingMode::ExternalClock { max_pulses: 4 },
            fault_model: FaultModel::Transition,
            engine: EngineChoice::Serial,
            atpg_engine: AtpgEngineChoice::Compiled,
            atpg: AtpgOptions::default(),
            mask_bidi: false,
            timing: None,
            lint: None,
            pattern_source: PatternSource::ExternalAtpg,
            artifacts: FlowArtifacts::default(),
            cancel: CancelToken::never(),
            trace: false,
        }
    }

    /// Selects the clocking mode (which capture procedures the clock
    /// generation scheme can physically deliver).
    #[must_use]
    pub fn clocking(mut self, mode: ClockingMode) -> Self {
        self.clocking = mode;
        self
    }

    /// Selects the fault model (stuck-at or transition).
    #[must_use]
    pub fn fault_model(mut self, kind: FaultModel) -> Self {
        self.fault_model = kind;
        self
    }

    /// Selects the fault-simulation engine.
    #[must_use]
    pub fn engine(mut self, choice: EngineChoice) -> Self {
        self.engine = choice;
        self
    }

    /// Selects the ATPG (test-generation) engine. Both choices
    /// produce identical outcomes; the compiled default is faster.
    #[must_use]
    pub fn atpg_engine(mut self, choice: AtpgEngineChoice) -> Self {
        self.atpg_engine = choice;
        self
    }

    /// Overrides the ATPG options (backtrack limit, random bootstrap,
    /// compaction, fill seed).
    #[must_use]
    pub fn atpg(mut self, options: AtpgOptions) -> Self {
        self.atpg = options;
        self
    }

    /// Masks the bidirectional-pad feedback paths (the ATE constraint
    /// of experiments (c)–(e)). Only meaningful for SOC sources.
    #[must_use]
    pub fn mask_bidi(mut self, mask: bool) -> Self {
        self.mask_bidi = mask;
        self
    }

    /// Enables the delay-test-quality stage under the given delay
    /// model: after ATPG, the final pattern set is re-graded through
    /// the timed PPSFP kernel and the report gains a `delay_quality`
    /// block (SDQL, weighted coverage, slack histogram, per-procedure
    /// capture windows). Strictly additive — fault statuses, pattern
    /// sets and every pre-existing report field are unchanged.
    #[must_use]
    pub fn timing(self, delays: DelayModel) -> Self {
        self.timing_config(TimingConfig::from(delays))
    }

    /// Enables the delay-test-quality stage with full control over the
    /// tester period, per-domain functional periods and the defect
    /// distribution (see [`TimingConfig`]).
    #[must_use]
    pub fn timing_config(mut self, config: TimingConfig) -> Self {
        self.timing = Some(config);
        self
    }

    /// Enables the pre-ATPG lint stage under the given gate.
    ///
    /// The [`Linter`] runs every static design-rule and testability
    /// check (comb loops, floating nets, duplicate names, non-scan
    /// capture flops, mode-aware at-speed CDC paths, scan-chain
    /// integrity, structural untestability) over the bound capture
    /// model before any test generation.
    ///
    /// * [`LintGate::Deny`] — error-severity violations abort the run
    ///   with [`FlowError::LintDenied`]; warnings are reported only.
    /// * [`LintGate::Warn`] — everything is reported, nothing aborts.
    ///
    /// Either way, faults the linter proves structurally untestable
    /// are pre-classified as [`occ_fault::FaultStatus::Untestable`]
    /// and their PODEM searches skipped — the resulting pattern set
    /// and coverage are identical to the unlinted flow (the proofs are
    /// sound; see [`occ_atpg::run_atpg_preclassified`]).
    #[must_use]
    pub fn lint(mut self, gate: LintGate) -> Self {
        self.lint = Some(gate);
        self
    }

    /// Selects how patterns are delivered to the scan chains (see
    /// [`PatternSource`]).
    ///
    /// * [`PatternSource::ExternalAtpg`] (default) — tester-driven
    ///   deterministic patterns; flows and reports are unchanged.
    /// * [`PatternSource::Edt`] — ATPG cubes are solved into channel
    ///   data by the EDT decompressor and responses are observed
    ///   through the space compactor; the fault list is re-graded
    ///   under compacted observation and the report gains a
    ///   `pattern_source` block (compression ratio, cube splits,
    ///   compactor-masked / X-masked detections). SOC flows only.
    /// * [`PatternSource::Lbist`] — PRPG-filled pseudo-random
    ///   patterns graded through the MISR; replaces the ATPG stage
    ///   entirely and the block carries the predicted signature,
    ///   aliasing count and X-source validity. SOC flows only.
    #[must_use]
    pub fn pattern_source(mut self, source: PatternSource) -> Self {
        self.pattern_source = source;
        self
    }

    /// Hands the flow precompiled artifact handles (shared graph,
    /// procedures, delay table) from a content-addressed cache: the
    /// corresponding compile stages skip their work and clone only
    /// `Arc`s. Reports are byte-identical to a cold run — the
    /// artifacts are pure functions of the inputs they are keyed by.
    /// See [`FlowArtifacts`] for the keying contract.
    #[must_use]
    pub fn artifacts(mut self, artifacts: FlowArtifacts) -> Self {
        self.artifacts = artifacts;
        self
    }

    /// Enables span-tree capture: the run installs a
    /// [`SpanRecorder`] with detail spans on, so every substage
    /// (ATPG phases, fault-sim batches, STA passes) records, and the
    /// report gains a `trace` block holding the span forest.
    /// Per-stage timings are identical in schema either way — they
    /// are derived from the same stage spans — and untraced reports
    /// are byte-identical to before tracing existed.
    #[must_use]
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Attaches a cooperative [`CancelToken`]: the pipeline polls it at
    /// every stage boundary and threads it into the ATPG/fault-sim
    /// batch loops. When it trips, [`TestFlow::run`] abandons all
    /// partial state and returns [`FlowError::Cancelled`] or
    /// [`FlowError::DeadlineExceeded`]; cancellation latency is
    /// bounded by one PODEM search plus one fault-simulation block.
    /// The default token never trips.
    #[must_use]
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Runs the pipeline: bind model → procedures → fault universe →
    /// ATPG (through the selected engine) → classify → report.
    ///
    /// # Errors
    ///
    /// Returns a typed [`FlowError`] for every misconfiguration the
    /// hand-wired pipelines used to panic on: zero worker threads,
    /// model-binding failures, zero clock domains, missing scan chains
    /// and clocking modes that cannot produce the procedures the fault
    /// model needs.
    pub fn run(&self) -> Result<FlowReport, FlowError> {
        let threads = self.engine.resolve_threads()?;
        // Stage-boundary cancellation poll; the batch loops inside ATPG
        // poll the same token at a finer grain.
        let check_cancel = || -> Result<(), FlowError> {
            match self.cancel.cause() {
                Some(cause) => Err(cause.into()),
                None => Ok(()),
            }
        };
        check_cancel()?;
        // Reuse an already-installed recorder (a traced service job
        // installs one around the whole job, so artifact-cache spans
        // join the same forest); otherwise install our own for the
        // duration of the run. Detail spans record only when tracing —
        // the default path records just the stage spans the report's
        // timings are derived from.
        let (recorder, _scope) = match occ_obs::current() {
            Some(r) => (r, None),
            None => {
                let r = SpanRecorder::new();
                let scope = r.install(self.trace);
                (r, Some(scope))
            }
        };
        let flow_span = occ_obs::stage_span("flow");
        let root_id = flow_span.id().unwrap_or(0);

        let (netlist, binding) = match &self.source {
            Source::Soc(soc) => (soc.netlist(), soc.binding(self.mask_bidi)),
            Source::Model { netlist, binding } => (*netlist, binding.clone()),
        };

        let stage_guard = occ_obs::stage_span(Stage::BindModel.label());
        let model = match &self.artifacts.graph {
            Some(graph) => CaptureModel::with_graph(netlist, binding, Arc::clone(graph))?,
            None => CaptureModel::new(netlist, binding)?,
        };
        drop(stage_guard);
        if model.domain_count() == 0 {
            return Err(FlowError::NoDomains);
        }
        if model.scan_flops().is_empty() {
            return Err(FlowError::NoScanChains);
        }
        check_cancel()?;

        let stage_guard = occ_obs::stage_span(Stage::Procedures.label());
        let procedures: Arc<Vec<occ_fsim::FrameSpec>> = match &self.artifacts.procedures {
            Some(procs) => {
                validate_procedures(self.clocking, self.fault_model)?;
                Arc::clone(procs)
            }
            None => Arc::new(build_procedures(
                self.clocking,
                self.fault_model,
                model.domain_count(),
            )?),
        };
        drop(stage_guard);

        let stage_guard = occ_obs::stage_span(Stage::FaultUniverse.label());
        let universe = match self.fault_model {
            FaultModel::StuckAt => FaultUniverse::stuck_at(netlist),
            FaultModel::Transition => FaultUniverse::transition(netlist),
        };
        drop(stage_guard);
        check_cancel()?;

        let lint = if let Some(gate) = self.lint {
            let stage_guard = occ_obs::stage_span(Stage::Lint.label());
            let mut linter = Linter::new(&model).mode(self.clocking);
            if let Source::Soc(soc) = &self.source {
                linter = linter.chains(soc.chains());
            }
            let lint_report = linter.run_with_universe(&universe);
            drop(stage_guard);
            if !lint_report.passes(gate) {
                return Err(FlowError::LintDenied {
                    errors: lint_report.errors(),
                    first: lint_report
                        .first_error()
                        .map(ToString::to_string)
                        .unwrap_or_default(),
                });
            }
            Some(LintBlock {
                gate,
                report: lint_report,
            })
        } else {
            None
        };
        let pre_untestable: &[occ_fault::Fault] = lint
            .as_ref()
            .map_or(&[], |l| l.report.untestable.as_slice());
        check_cancel()?;

        let mut pattern_source: Option<PatternSourceBlock> = None;
        let (mut result, kernel, atpg_kernel) =
            if let PatternSource::Lbist(cfg) = &self.pattern_source {
                // LBIST replaces deterministic generation outright: the
                // PRPG fills the chains, the MISR observes them, and the
                // kernel referees which detections survive compaction.
                let Source::Soc(soc) = &self.source else {
                    return Err(FlowError::PatternSourceNeedsSoc { source: "lbist" });
                };
                let x_sources = match &lint {
                    Some(l) => x_source_count(&l.report.diagnostics),
                    // X-bounding is part of the LBIST contract even when
                    // the lint stage was not configured: audit X-sources
                    // internally so the signature validity is always
                    // honest.
                    None => {
                        let r = Linter::new(&model)
                            .mode(self.clocking)
                            .chains(soc.chains())
                            .run();
                        x_source_count(&r.diagnostics)
                    }
                };
                let stage_guard = occ_obs::stage_span(Stage::PatternSource.label());
                let outcome = run_lbist(
                    &model,
                    &procedures,
                    universe,
                    soc.chains(),
                    cfg,
                    pre_untestable,
                    x_sources,
                    &self.cancel,
                )?;
                drop(stage_guard);
                let r = outcome.report;
                pattern_source = Some(PatternSourceBlock {
                    source: "lbist".to_owned(),
                    kernel_detected: r.kernel_detected,
                    source_detected: r.bist_detected,
                    aliased: r.aliased,
                    compactor_masked: 0,
                    x_masked: r.x_masked,
                    signature: r.signature,
                    signature_valid: Some(r.signature_valid),
                    x_sources: r.x_sources,
                    compression_ratio: 0.0,
                    encode_splits: 0,
                    dropped_cubes: 0,
                });
                let result = AtpgResult {
                    patterns: outcome.patterns,
                    faults: outcome.faults,
                    stats: AtpgStats::default(),
                };
                (result, outcome.kernel, AtpgKernelStats::default())
            } else {
                let mut atpg_guard = Some(occ_obs::stage_span(Stage::Atpg.label()));
                // Both fault-sim engines implement FaultSimEngine and yield
                // bit-identical masks; both ATPG engines implement AtpgEngine
                // and yield identical outcomes. The flow is generic over the
                // trait objects.
                let mut serial;
                let mut sharded;
                let engine: &mut dyn FaultSimEngine = match self.engine {
                    EngineChoice::Serial => {
                        serial = FaultSim::new(&model);
                        &mut serial
                    }
                    EngineChoice::Sharded { .. } | EngineChoice::Auto => {
                        sharded = ParallelFaultSim::with_threads(&model, threads);
                        &mut sharded
                    }
                };
                let mut reference_podem;
                let mut compiled_podem;
                let podem: &mut dyn AtpgEngine = match self.atpg_engine {
                    AtpgEngineChoice::Reference => {
                        reference_podem = ReferencePodem::new(&model);
                        &mut reference_podem
                    }
                    AtpgEngineChoice::Compiled => {
                        compiled_podem = CompiledPodem::new(&model);
                        &mut compiled_podem
                    }
                };
                let result = match &self.pattern_source {
                    PatternSource::Edt(cfg) => {
                        // Every ATPG cube is delivered through the EDT
                        // decompressor instead of directly by the tester.
                        let Source::Soc(soc) = &self.source else {
                            return Err(FlowError::PatternSourceNeedsSoc { source: "edt" });
                        };
                        let map = ChainMap::new(&model, soc.chains());
                        let cfg = resolve_edt_geometry(cfg, &map)?;
                        let codec = EdtCodec::new(cfg.clone());
                        let mut fill =
                            EdtFill::new(EdtCodec::new(cfg), map.clone(), self.atpg.fill_seed);
                        let mut result = run_atpg_filled(
                            &model,
                            &procedures,
                            universe,
                            &self.atpg,
                            engine,
                            podem,
                            pre_untestable,
                            &self.cancel,
                            &mut fill,
                        )?;
                        drop(atpg_guard.take());
                        // Re-grade the final pattern set under compacted
                        // observation: detections that die to XOR
                        // cancellation or X-poisoning in the compactor are
                        // taken away again, with the loss accounted.
                        let stage_guard = occ_obs::stage_span(Stage::PatternSource.label());
                        let (faults, grade) = regrade_edt(
                            &model,
                            &procedures,
                            &result.patterns,
                            &result.faults,
                            &codec,
                            &map,
                            &self.cancel,
                        )?;
                        result.faults = faults;
                        drop(stage_guard);
                        pattern_source = Some(PatternSourceBlock {
                            source: "edt".to_owned(),
                            kernel_detected: grade.kernel_detected,
                            source_detected: grade.edt_detected,
                            aliased: 0,
                            compactor_masked: grade.compactor_masked,
                            x_masked: grade.x_masked,
                            signature: None,
                            signature_valid: None,
                            x_sources: 0,
                            compression_ratio: fill.compression_ratio(),
                            encode_splits: fill.splits(),
                            dropped_cubes: fill.dropped_cubes(),
                        });
                        result
                    }
                    _ => {
                        let result = run_atpg_cancellable(
                            &model,
                            &procedures,
                            universe,
                            &self.atpg,
                            engine,
                            podem,
                            pre_untestable,
                            &self.cancel,
                        )?;
                        drop(atpg_guard.take());
                        result
                    }
                };
                let kernel = engine.kernel_stats();
                let atpg_kernel = podem.kernel_stats();
                (result, kernel, atpg_kernel)
            };

        let stage_guard = occ_obs::stage_span(Stage::Classify.label());
        classify_faults(&model, &mut result.faults);
        drop(stage_guard);
        check_cancel()?;

        let delay_quality = self.timing.as_ref().map(|cfg| {
            let stage_guard = occ_obs::stage_span(Stage::Timing.label());
            let periods = self.domain_periods(cfg, model.domain_count());
            let q = run_quality(
                &model,
                &procedures,
                self.clocking,
                &result,
                cfg,
                &periods,
                self.artifacts.delays.as_deref(),
            );
            drop(stage_guard);
            q
        });

        // The root span must drop before the records are read — a
        // span's record lands in the recorder at guard drop.
        drop(flow_span);
        let records = recorder.records();
        let stages: Vec<StageTiming> = records
            .iter()
            .filter(|r| r.parent == root_id)
            .filter_map(|r| {
                Stage::from_label(r.name).map(|stage| StageTiming {
                    stage,
                    seconds: r.seconds(),
                })
            })
            .collect();
        let trace = self.trace.then(|| TraceBlock {
            tree: SpanTree::build(&records),
        });
        self.feed_metrics(&stages, &kernel, &atpg_kernel, &result.stats);

        let coverage = result.report();
        Ok(FlowReport {
            design: netlist.name().to_owned(),
            clocking: self.clocking,
            fault_model: self.fault_model,
            engine: self.engine.label().to_owned(),
            atpg_engine: self.atpg_engine.label().to_owned(),
            threads,
            procedures: procedures.len(),
            stages,
            coverage,
            kernel,
            atpg_kernel,
            lint,
            delay_quality,
            pattern_source,
            trace,
            result,
        })
    }

    /// Feeds the process-wide metric catalog from the run's stat
    /// structs — one batch of relaxed atomic adds at flow end, so the
    /// kernels' inner loops stay free of shared-counter traffic.
    fn feed_metrics(
        &self,
        stages: &[StageTiming],
        kernel: &occ_fsim::KernelStats,
        atpg_kernel: &occ_atpg::AtpgKernelStats,
        stats: &AtpgStats,
    ) {
        let m = occ_obs::metrics();
        m.kernel_faults_graded.add(kernel.faults_graded);
        m.kernel_cone_pruned.add(kernel.cone_pruned);
        m.kernel_events.add(kernel.events);
        m.atpg_decisions.add(atpg_kernel.decisions);
        m.atpg_backtracks.add(atpg_kernel.backtracks);
        m.atpg_events.add(atpg_kernel.events);
        m.atpg_podem_calls.add(stats.podem_calls as u64);
        m.atpg_tests_found.add(stats.tests_found as u64);
        for st in stages {
            if let Some(h) = m.stage(st.stage.label()) {
                h.observe(st.seconds);
            }
        }
    }

    /// The per-domain functional periods the quality stage grades
    /// against: explicit config wins (padded with the default period
    /// when shorter than the domain count, so the functional
    /// thresholds and capture windows always agree on one period per
    /// domain), SOC sources derive them from the generator's domain
    /// frequencies, custom netlists fall back to the paper's
    /// fast-domain period.
    fn domain_periods(&self, cfg: &TimingConfig, n_domains: usize) -> Vec<Time> {
        if !cfg.domain_periods_ps.is_empty() {
            let mut periods = cfg.domain_periods_ps.clone();
            if periods.len() < n_domains {
                periods.resize(n_domains, DEFAULT_DOMAIN_PERIOD_PS);
            }
            return periods;
        }
        match &self.source {
            Source::Soc(soc) => soc
                .config()
                .domains
                .iter()
                .map(|d| ClockDomainSpec::new(&d.name, d.freq_mhz).period_ps())
                .collect(),
            Source::Model { .. } => vec![DEFAULT_DOMAIN_PERIOD_PS; n_domains],
        }
    }
}

/// Resolves an [`EdtConfig`] against the design's actual scan
/// geometry. A config with `chains == 0` (see [`EdtConfig::auto`]) is
/// derived: chains and shift length from the chain map, channel count
/// from the paper's ~10:1 chain:channel shape, and ring length from
/// the channel count — a ring much longer than the variables a
/// channel can inject within warmup leaves decompressor outputs
/// structurally constant, so `auto` sizes it at 8 cells per channel.
/// An explicit config must match the design exactly.
fn resolve_edt_geometry(cfg: &EdtConfig, map: &ChainMap) -> Result<EdtConfig, FlowError> {
    if cfg.chains == 0 {
        let chains = map.chains();
        let channels = if cfg.channels > 0 {
            cfg.channels
        } else {
            (chains / 10).max(1)
        };
        let lfsr_len = if cfg.lfsr_len > 0 {
            cfg.lfsr_len
        } else {
            (channels * 8).clamp(16, 64)
        };
        return Ok(EdtConfig {
            channels,
            chains,
            shift_len: map.shift_len(),
            lfsr_len,
            warmup: cfg.warmup.max(1),
            seed: cfg.seed,
        });
    }
    if cfg.chains != map.chains() || cfg.shift_len != map.shift_len() {
        return Err(FlowError::EdtGeometryMismatch {
            config: (cfg.chains, cfg.shift_len),
            design: (map.chains(), map.shift_len()),
        });
    }
    Ok(cfg.clone())
}
