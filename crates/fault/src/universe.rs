//! Fault-universe enumeration over a netlist.

use crate::collapse::collapse;
use crate::{Fault, FaultModel, FaultSite, Polarity};
use occ_netlist::{CellKind, Netlist};

/// The set of faults targeted for a netlist: the uncollapsed universe
/// size plus the collapsed representative list actually driven through
/// ATPG/fault simulation.
///
/// Fault sites follow the paper's convention ("two faults at each gate
/// terminal"): every logic net (cell output) and every input pin of
/// multi-input gates. Clock-path primitives (latches, clock-gating
/// cells) and RAM internals are excluded — they are tested by the
/// protocol-level tests, not by scan ATPG.
#[derive(Debug, Clone)]
pub struct FaultUniverse {
    model: FaultModel,
    faults: Vec<Fault>,
    total_uncollapsed: usize,
}

impl FaultUniverse {
    /// Enumerates and collapses the stuck-at universe.
    pub fn stuck_at(netlist: &Netlist) -> Self {
        Self::build(netlist, FaultModel::StuckAt)
    }

    /// Enumerates and collapses the transition universe.
    ///
    /// Uses the same sites and collapsing as stuck-at, so
    /// `transition(nl).faults().len() == stuck_at(nl).faults().len()` —
    /// matching the paper's statement that the collapsed counts are
    /// identical.
    pub fn transition(netlist: &Netlist) -> Self {
        Self::build(netlist, FaultModel::Transition)
    }

    fn build(netlist: &Netlist, model: FaultModel) -> Self {
        let mut raw = Vec::new();
        for (id, cell) in netlist.iter() {
            let kind = cell.kind();
            if has_output_faults(kind) {
                raw.push(Fault::new(model, FaultSite::Output(id), Polarity::P0));
                raw.push(Fault::new(model, FaultSite::Output(id), Polarity::P1));
            }
            if multi_input_gate(kind) {
                for pin in 0..cell.inputs().len() {
                    let site = FaultSite::Input {
                        cell: id,
                        pin: pin as u8,
                    };
                    raw.push(Fault::new(model, site, Polarity::P0));
                    raw.push(Fault::new(model, site, Polarity::P1));
                }
            }
        }
        let total_uncollapsed = raw.len();
        let faults = collapse(netlist, &raw);
        FaultUniverse {
            model,
            faults,
            total_uncollapsed,
        }
    }

    /// The fault model of this universe.
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// Collapsed representative faults, in deterministic order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of faults before collapsing.
    pub fn total_uncollapsed(&self) -> usize {
        self.total_uncollapsed
    }
}

/// Cells whose output net carries target faults.
fn has_output_faults(kind: CellKind) -> bool {
    match kind {
        CellKind::Input
        | CellKind::Buf
        | CellKind::Not
        | CellKind::And
        | CellKind::Nand
        | CellKind::Or
        | CellKind::Nor
        | CellKind::Xor
        | CellKind::Xnor
        | CellKind::Mux2
        | CellKind::RamOut { .. } => true,
        k if k.is_flop() => true,
        _ => false,
    }
}

/// Gates whose input pins are separate fault sites (fanout branches).
fn multi_input_gate(kind: CellKind) -> bool {
    matches!(
        kind,
        CellKind::And
            | CellKind::Nand
            | CellKind::Or
            | CellKind::Nor
            | CellKind::Xor
            | CellKind::Xnor
            | CellKind::Mux2
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_netlist::NetlistBuilder;

    #[test]
    fn counts_match_paper_convention() {
        // inv chain: a -> not -> not -> PO: nets a, n1, n2 = 6 faults
        // uncollapsed; collapsing merges the whole chain into 2.
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let n1 = b.not(a);
        let n2 = b.not(n1);
        b.output("y", n2);
        let nl = b.finish().unwrap();
        let uni = FaultUniverse::stuck_at(&nl);
        assert_eq!(uni.total_uncollapsed(), 6);
        assert_eq!(uni.faults().len(), 2);
    }

    #[test]
    fn transition_count_equals_stuck_count() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let g1 = b.and2(a, c);
        let g2 = b.or2(g1, a);
        let g3 = b.xor2(g1, g2);
        b.output("y", g3);
        let nl = b.finish().unwrap();
        let sa = FaultUniverse::stuck_at(&nl);
        let tf = FaultUniverse::transition(&nl);
        assert_eq!(sa.faults().len(), tf.faults().len());
        assert!(tf
            .faults()
            .iter()
            .all(|f| f.model() == FaultModel::Transition));
    }

    #[test]
    fn excluded_kinds_carry_no_faults() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let en = b.input("en");
        let cg = b.clock_gate(clk, en);
        let lt = b.latch_low(en, clk);
        let g = b.and2(cg, lt);
        b.output("y", g);
        let nl = b.finish().unwrap();
        let uni = FaultUniverse::stuck_at(&nl);
        for f in uni.faults() {
            let cell = f.site().effect_cell();
            let kind = nl.cell(cell).kind();
            assert!(
                !matches!(kind, CellKind::ClockGate | CellKind::LatchLow),
                "clock-path primitive carries fault {f}"
            );
        }
    }

    #[test]
    fn fanout_branches_are_distinct_sites() {
        // A stem with two AND branches: branch pin faults must survive
        // collapsing as distinct (they are not equivalent to the stem).
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.and2(a, x);
        let g2 = b.and2(a, y);
        b.output("o1", g1);
        b.output("o2", g2);
        let nl = b.finish().unwrap();
        let uni = FaultUniverse::stuck_at(&nl);
        // sa1 faults on the two branches of stem `a` must both survive as
        // pin faults (sa0 collapses into each gate's output sa0; the
        // x/y pins collapse onto out(x)/out(y) because those drivers
        // have a single fanout).
        let branch_sa1 = uni
            .faults()
            .iter()
            .filter(|f| {
                matches!(f.site(), FaultSite::Input { cell, pin: 0 } if cell == g1 || cell == g2)
                    && f.polarity() == Polarity::P1
            })
            .count();
        assert_eq!(branch_sa1, 2); // the `a` branch into each gate
    }
}
