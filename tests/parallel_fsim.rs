//! Determinism of the sharded fault simulator on a seeded random SOC:
//! serial PPSFP and `ParallelFaultSim` at 1, 2 and 8 threads must
//! produce identical per-fault detection masks, identical merged
//! `FaultStatus` verdicts and identical coverage.

use occ::fault::{FaultList, FaultStatus, FaultUniverse};
use occ::fsim::{simulate_good, CaptureModel, FaultSim, FrameSpec, ParallelFaultSim, Pattern};
use occ::netlist::Logic;
use occ::soc::{generate, SocConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn sharded_detection_is_bit_identical_on_random_soc() {
    let soc = generate(&SocConfig::paper_like(21, 48));
    let binding = soc.binding(true);
    let model = CaptureModel::new(soc.netlist(), binding).unwrap();
    let spec = FrameSpec::broadside("loc", &[0, 1], 2)
        .hold_pi(true)
        .observe_po(false);

    let mut rng = StdRng::seed_from_u64(0x0CC);
    let patterns: Vec<Pattern> = (0..64)
        .map(|_| {
            let mut p = Pattern::empty(&model, &spec, 0);
            p.fill_x(|| Logic::from_bool(rng.gen_bool(0.5)));
            p
        })
        .collect();
    let good = simulate_good(&model, &spec, &patterns);
    let faults = FaultUniverse::transition(soc.netlist()).faults().to_vec();
    assert!(faults.len() > 500, "SOC too small to be meaningful");

    let serial = FaultSim::new(&model).detect_many(&spec, &good, &faults);
    assert!(
        serial.iter().any(|&m| m != 0),
        "degenerate run: no fault detected"
    );

    for threads in [1usize, 2, 8] {
        let sharded =
            ParallelFaultSim::with_threads(&model, threads).detect_many(&spec, &good, &faults);
        assert_eq!(
            serial, sharded,
            "detection masks diverged at {threads} threads"
        );
    }
}

#[test]
fn sharded_grade_reaches_identical_coverage() {
    let soc = generate(&SocConfig::tiny(5));
    let binding = soc.binding(true);
    let model = CaptureModel::new(soc.netlist(), binding).unwrap();
    let spec = FrameSpec::new("sa", vec![occ::fsim::CycleSpec::pulsing(&[0])]);

    let mut rng = StdRng::seed_from_u64(7);
    let patterns: Vec<Pattern> = (0..32)
        .map(|_| {
            let mut p = Pattern::empty(&model, &spec, 0);
            p.fill_x(|| Logic::from_bool(rng.gen_bool(0.5)));
            p
        })
        .collect();
    let good = simulate_good(&model, &spec, &patterns);
    let uni = FaultUniverse::stuck_at(soc.netlist());

    // Serial reference merge.
    let mut reference = FaultList::new(uni.clone());
    let mut engine = FaultSim::new(&model);
    for fault in uni.faults().to_vec() {
        let mask = engine.detect(&spec, &good, fault);
        if mask != 0 {
            reference.set_status(
                fault,
                FaultStatus::Detected {
                    pattern: mask.trailing_zeros(),
                },
            );
        }
    }
    let want = reference.report();
    assert!(want.detected > 0, "degenerate run: nothing detected");

    for threads in [1usize, 2, 8] {
        let mut list = FaultList::new(uni.clone());
        let newly =
            ParallelFaultSim::with_threads(&model, threads)
                .grade(&spec, &good, &mut list, |bit| bit as u32);
        assert_eq!(newly, want.detected, "threads={threads}");
        assert_eq!(
            list.report(),
            want,
            "coverage diverged at {threads} threads"
        );
        for (fault, status) in list.iter() {
            assert_eq!(status, reference.status(fault), "fault {fault}");
        }
    }
}
