//! The top-level ATPG flow: target faults, batch fault simulation,
//! random fill and static compaction — the loop every Table 1
//! experiment runs.
//!
//! The flow is generic over **both** engines it drives. Every grading
//! step goes through [`FaultSimEngine`], so the serial compiled-kernel
//! [`occ_fsim::FaultSim`] and the sharded
//! [`occ_fsim::ParallelFaultSim`] are interchangeable and produce
//! identical results (the engines guarantee bit-identical masks); and
//! every deterministic test-generation attempt goes through
//! [`AtpgEngine`], so the scalar [`crate::ReferencePodem`] and the
//! compiled [`crate::CompiledPodem`] are interchangeable with
//! identical outcomes. The drop and compaction loops below ride the
//! kernels unchanged: the zero-allocation rebuild and the
//! observability-cone pruning live entirely behind
//! [`FaultSimEngine::detect_batch`], which is what makes
//! single-pattern compaction grading (one full-universe pass per kept
//! pattern) affordable.

use crate::{AtpgEngine, Observability, PodemOutcome};
use occ_fault::{FaultList, FaultStatus, FaultUniverse};
use occ_fsim::{
    simulate_good, CancelCause, CancelToken, CaptureModel, FaultSimEngine, FrameSpec, Pattern,
    PatternSet,
};
use occ_netlist::Logic;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options controlling an ATPG run.
#[derive(Debug, Clone)]
pub struct AtpgOptions {
    /// PODEM backtrack limit; exceeding it classifies a fault aborted.
    pub backtrack_limit: usize,
    /// Seed for random X-fill and bootstrap patterns.
    pub fill_seed: u64,
    /// Run the reverse-order static compaction pass.
    pub compaction: bool,
    /// Random patterns fault-simulated per procedure before
    /// deterministic generation (only contributing ones are kept) —
    /// the standard random-bootstrap phase of production flows.
    pub random_patterns: usize,
}

impl Default for AtpgOptions {
    fn default() -> Self {
        AtpgOptions {
            backtrack_limit: 128,
            fill_seed: 0x0CC,
            compaction: true,
            random_patterns: 256,
        }
    }
}

/// Counters reported by an ATPG run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AtpgStats {
    /// Faults handed to PODEM (not dropped by fault simulation first).
    pub targeted: usize,
    /// PODEM invocations (targets × procedures tried).
    pub podem_calls: usize,
    /// Tests found by PODEM.
    pub tests_found: usize,
    /// Calls ending in abort.
    pub aborted_calls: usize,
    /// Patterns before compaction.
    pub patterns_before_compaction: usize,
    /// 64-pattern fault-simulation batches run.
    pub fsim_batches: usize,
    /// Faults pre-classified untestable by static analysis, whose
    /// PODEM searches were skipped entirely (see
    /// [`run_atpg_preclassified`]).
    pub lint_pruned: usize,
}

/// The result of an ATPG run.
#[derive(Debug)]
pub struct AtpgResult {
    /// The generated (compacted) pattern set.
    pub patterns: PatternSet,
    /// Final fault statuses.
    pub faults: FaultList,
    /// Run counters.
    pub stats: AtpgStats,
}

impl AtpgResult {
    /// Convenience: the coverage report of the final fault list.
    pub fn report(&self) -> occ_fault::CoverageReport {
        self.faults.report()
    }
}

/// How patterns reach the chains — the delivery seam of the ATPG flow.
///
/// The flow generates deterministic test *cubes* (care bits only) and
/// needs pseudo-random *bootstrap* patterns; how those become the
/// patterns actually applied is a property of the test architecture,
/// not of the search. [`RandomFill`] is the classic external-ATE path
/// (X-fill every don't-care); an EDT implementation encodes the care
/// bits into compressed channel data and delivers the decompressor's
/// expansion instead, possibly splitting one cube across several
/// deliverable patterns when the encoder's linear system is
/// overconstrained.
pub trait PatternFill {
    /// Turns one PODEM cube into the pattern(s) the hardware can
    /// actually deliver. `proc_index` is set by the caller afterwards.
    ///
    /// An empty vector means the cube is undeliverable under this
    /// source; a multi-pattern vector is a split delivery — the caller
    /// re-grades the target fault against the batch instead of trusting
    /// the cube's guarantee.
    fn deliver(
        &mut self,
        cube: Pattern,
        model: &CaptureModel<'_>,
        spec: &FrameSpec,
        pi: usize,
    ) -> Vec<Pattern>;

    /// One pseudo-random bootstrap pattern for procedure `pi`.
    fn bootstrap(&mut self, model: &CaptureModel<'_>, spec: &FrameSpec, pi: usize) -> Pattern;
}

/// The default [`PatternFill`]: random X-fill straight from a seeded
/// RNG, i.e. uncompressed external-ATE delivery. [`run_atpg`] with this
/// fill is bit-identical to the historical unfilled entry points (same
/// RNG, same draw order).
#[derive(Debug)]
pub struct RandomFill {
    rng: StdRng,
}

impl RandomFill {
    /// A fill stream seeded like [`AtpgOptions::fill_seed`].
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomFill {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl PatternFill for RandomFill {
    fn deliver(
        &mut self,
        mut cube: Pattern,
        _model: &CaptureModel<'_>,
        _spec: &FrameSpec,
        _pi: usize,
    ) -> Vec<Pattern> {
        cube.fill_x(|| Logic::from_bool(self.rng.gen_bool(0.5)));
        vec![cube]
    }

    fn bootstrap(&mut self, model: &CaptureModel<'_>, spec: &FrameSpec, pi: usize) -> Pattern {
        let mut p = Pattern::empty(model, spec, pi);
        p.fill_x(|| Logic::from_bool(self.rng.gen_bool(0.5)));
        p
    }
}

/// Grades `candidates` against one batch and applies the detections to
/// `list`, mapping the lowest detecting pattern bit through
/// `pattern_of_bit`.
fn apply_detections(
    engine: &mut dyn FaultSimEngine,
    spec: &FrameSpec,
    good: &occ_fsim::GoodBatch,
    candidates: &[occ_fault::Fault],
    list: &mut FaultList,
    mut pattern_of_bit: impl FnMut(usize) -> u32,
) {
    let masks = engine.detect_batch(spec, good, candidates);
    for (&fault, &mask) in candidates.iter().zip(&masks) {
        if mask != 0 {
            let bit = mask.trailing_zeros() as usize;
            list.set_status(
                fault,
                FaultStatus::Detected {
                    pattern: pattern_of_bit(bit),
                },
            );
        }
    }
}

/// Runs the full ATPG flow for a fault universe over a set of capture
/// procedures, grading through the given [`FaultSimEngine`] and
/// generating through the given [`AtpgEngine`].
///
/// For each yet-undetected fault, the procedures are tried in order
/// (skipping those whose observability cone cannot see the fault); a
/// found test is random-filled and appended, and every 64 patterns the
/// whole undetected list is fault-simulated to drop fortuitous
/// detections. Optionally a reverse-order static compaction pass prunes
/// patterns that no longer contribute, re-grading from scratch.
///
/// The result is independent of both engine choices: serial and
/// sharded fault simulators return bit-identical masks, and the
/// reference and compiled PODEM engines return identical
/// [`PodemOutcome`]s — so fault statuses, pattern sets and coverage
/// reports are equal for any combination.
///
/// # Panics
///
/// Panics if `procedures` is empty (`occ-flow` validates this ahead of
/// time and returns a typed error instead).
pub fn run_atpg(
    model: &CaptureModel<'_>,
    procedures: &[FrameSpec],
    universe: FaultUniverse,
    options: &AtpgOptions,
    engine: &mut dyn FaultSimEngine,
    podem: &mut dyn AtpgEngine,
) -> AtpgResult {
    run_atpg_preclassified(model, procedures, universe, options, engine, podem, &[])
}

/// [`run_atpg`] with a static-analysis verdict: faults in
/// `pre_untestable` (the `occ-lint` untestability pass) are marked
/// [`FaultStatus::Untestable`] up front and **skipped by PODEM** — the
/// perf hook of the lint layer.
///
/// The pre-classification must be *sound* (no engine can ever detect
/// such a fault); under that contract the final pattern set is
/// byte-identical to an unpruned run: the bootstrap still grades the
/// pre-marked faults (their detection masks are zero by soundness, so
/// no pattern is kept on their account), the PODEM loop skips them
/// exactly as it skips any other non-`Undetected` status, and
/// compaction carries the verdict through. The only admissible
/// difference is classification *labels* on faults whose unpruned
/// search would have hit the backtrack limit (`Aborted` vs
/// `Untestable`); `stats.lint_pruned` counts the skipped searches.
///
/// # Panics
///
/// Panics if `procedures` is empty, like [`run_atpg`], or if a
/// pre-classified fault is not in `universe` (compute the verdict over
/// the same collapsed universe the run targets).
#[allow(clippy::too_many_arguments)]
pub fn run_atpg_preclassified(
    model: &CaptureModel<'_>,
    procedures: &[FrameSpec],
    universe: FaultUniverse,
    options: &AtpgOptions,
    engine: &mut dyn FaultSimEngine,
    podem: &mut dyn AtpgEngine,
    pre_untestable: &[occ_fault::Fault],
) -> AtpgResult {
    match run_atpg_cancellable(
        model,
        procedures,
        universe,
        options,
        engine,
        podem,
        pre_untestable,
        &CancelToken::never(),
    ) {
        Ok(result) => result,
        Err(cause) => unreachable!("a never-token cannot trip: {cause:?}"),
    }
}

/// [`run_atpg_preclassified`] under a cooperative [`CancelToken`]: the
/// token is attached to the grading engine and polled at every batch
/// boundary (per random-bootstrap chunk, per PODEM target, per
/// compaction pattern). When it trips — explicit cancel or an expired
/// deadline — the run abandons all partial state and returns the
/// [`CancelCause`]; an `Ok` result is never built from a truncated
/// grading pass (the cause is re-checked after the last batch, and trip
/// states are permanent).
///
/// Cancellation latency is bounded by one PODEM search plus one 64-wide
/// fault-simulation block, not by the whole run.
///
/// # Errors
///
/// Returns the [`CancelCause`] when the token trips before the run
/// completes.
///
/// # Panics
///
/// Panics under the same conditions as [`run_atpg_preclassified`].
#[allow(clippy::too_many_arguments)]
pub fn run_atpg_cancellable(
    model: &CaptureModel<'_>,
    procedures: &[FrameSpec],
    universe: FaultUniverse,
    options: &AtpgOptions,
    engine: &mut dyn FaultSimEngine,
    podem: &mut dyn AtpgEngine,
    pre_untestable: &[occ_fault::Fault],
    cancel: &CancelToken,
) -> Result<AtpgResult, CancelCause> {
    let mut fill = RandomFill::new(options.fill_seed);
    run_atpg_filled(
        model,
        procedures,
        universe,
        options,
        engine,
        podem,
        pre_untestable,
        cancel,
        &mut fill,
    )
}

/// [`run_atpg_cancellable`] with an explicit [`PatternFill`] delivery
/// seam: every bootstrap pattern and every PODEM cube goes through
/// `fill`, so a compressed delivery architecture (EDT) can replace
/// random X-fill without touching the search.
///
/// Two behavioral deltas versus the plain entry points, both only
/// reachable with a non-trivial fill: a *split* delivery (more than one
/// pattern per cube) is immediately graded against its target fault —
/// the cube's detection guarantee does not survive re-encoding — and a
/// fault whose every found test is *undeliverable* stays
/// [`FaultStatus::Undetected`] (the search succeeded; the delivery
/// architecture failed), never `Untestable` or `Aborted`. With
/// [`RandomFill`] the results are bit-identical to [`run_atpg`].
///
/// # Errors
///
/// Returns the [`CancelCause`] when the token trips before the run
/// completes.
///
/// # Panics
///
/// Panics under the same conditions as [`run_atpg_preclassified`].
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub fn run_atpg_filled(
    model: &CaptureModel<'_>,
    procedures: &[FrameSpec],
    universe: FaultUniverse,
    options: &AtpgOptions,
    engine: &mut dyn FaultSimEngine,
    podem: &mut dyn AtpgEngine,
    pre_untestable: &[occ_fault::Fault],
    cancel: &CancelToken,
    fill: &mut dyn PatternFill,
) -> Result<AtpgResult, CancelCause> {
    engine.attach_cancel(cancel.clone());
    assert!(
        !procedures.is_empty(),
        "need at least one capture procedure"
    );
    let mut list = FaultList::new(universe);
    let mut stats = AtpgStats::default();

    let observability: Vec<Observability> = procedures
        .iter()
        .map(|spec| Observability::compute(model, spec))
        .collect();

    let mut patterns = PatternSet::new(procedures.to_vec());
    // Per-procedure batch of not-yet-fault-simulated pattern indices.
    let mut pending: Vec<Vec<usize>> = vec![Vec::new(); procedures.len()];

    // Pre-pass: faults sitting on constrained or masked control pins
    // (clocks held low, scan enable, resets, scan-in ports) cannot be
    // activated by capture patterns — they are covered by other test
    // classes (chain test, DC parametrics), which is what the paper's
    // planned "non-functional scan path" grouping is about.
    {
        let controlled: std::collections::HashSet<_> = model
            .forced()
            .iter()
            .map(|&(c, _)| c)
            .chain(model.masked().iter().copied())
            .collect();
        let all: Vec<occ_fault::Fault> = list.faults().to_vec();
        for fault in all {
            let node = match fault.site() {
                occ_fault::FaultSite::Output(c) => c,
                occ_fault::FaultSite::Input { cell, pin } => {
                    model.netlist().cell(cell).inputs()[pin as usize]
                }
            };
            if controlled.contains(&node) {
                list.set_status(fault, FaultStatus::Constrained);
            }
        }
    }

    // Apply the static untestability verdict (after the constrained
    // pre-pass, which takes precedence on overlapping sites). The
    // per-fault PODEM loop below skips any non-Undetected status, so
    // each pre-marked fault saves its whole deterministic search.
    for &fault in pre_untestable {
        if list.status(fault) == FaultStatus::Undetected {
            list.set_status(fault, FaultStatus::Untestable);
            stats.lint_pruned += 1;
        }
    }

    // Random-bootstrap phase: cheap fortuitous detection before any
    // deterministic search.
    let mut phase_span = occ_obs::span("atpg.bootstrap");
    phase_span.attr_u64("procedures", procedures.len() as u64);
    for (pi, spec) in procedures.iter().enumerate() {
        let mut remaining = options.random_patterns;
        while remaining > 0 {
            if let Some(cause) = cancel.cause() {
                return Err(cause);
            }
            let chunk = remaining.min(64);
            remaining -= chunk;
            let mut pats: Vec<Pattern> = Vec::with_capacity(chunk);
            for _ in 0..chunk {
                pats.push(fill.bootstrap(model, spec, pi));
            }
            let good = simulate_good(model, spec, &pats);
            stats.fsim_batches += 1;
            // Attribute each newly detected fault to the lowest pattern
            // bit; keep only contributing patterns.
            let candidates: Vec<occ_fault::Fault> = list
                .iter()
                .filter(|(_, s)| !s.is_detected())
                .map(|(f, _)| f)
                .collect();
            let masks = engine.detect_batch(spec, &good, &candidates);
            let mut used_bits: Vec<usize> = masks
                .iter()
                .filter(|&&m| m != 0)
                .map(|m| m.trailing_zeros() as usize)
                .collect();
            used_bits.sort_unstable();
            used_bits.dedup();
            let mut index_of_bit = std::collections::HashMap::new();
            for &bit in &used_bits {
                let idx = patterns.push(pats[bit].clone());
                index_of_bit.insert(bit, idx);
            }
            for (&fault, &mask) in candidates.iter().zip(&masks) {
                if mask != 0 {
                    let bit = mask.trailing_zeros() as usize;
                    list.set_status(
                        fault,
                        FaultStatus::Detected {
                            pattern: index_of_bit[&bit] as u32,
                        },
                    );
                }
            }
            if used_bits.is_empty() {
                break; // diminishing returns for this procedure
            }
        }
    }

    phase_span.attr_u64("patterns", patterns.len() as u64);
    drop(phase_span);

    let mut phase_span = occ_obs::span("atpg.search");
    let faults: Vec<occ_fault::Fault> = list.faults().to_vec();
    for &fault in &faults {
        if let Some(cause) = cancel.cause() {
            return Err(cause);
        }
        if list.status(fault) != FaultStatus::Undetected {
            continue;
        }
        stats.targeted += 1;
        let mut any_abort = false;
        let mut found = false;
        let mut undeliverable = false;
        for (pi, spec) in procedures.iter().enumerate() {
            let obs = &observability[pi];
            // Quick structural skip: the fault's effect cell can never
            // be observed under this procedure.
            let effect = fault.site().effect_cell();
            let scan_q_stuck = fault.model() == occ_fault::FaultModel::StuckAt
                && matches!(fault.site(), occ_fault::FaultSite::Output(c)
                    if model.flop_index(c).is_some_and(|fi| model.flops()[fi].is_scan));
            if !(1..=spec.frames()).any(|k| obs.observable(k, effect)) && !scan_q_stuck {
                continue;
            }
            stats.podem_calls += 1;
            match podem.run(spec, obs, fault, options.backtrack_limit) {
                PodemOutcome::Test(p) => {
                    stats.tests_found += 1;
                    let mut delivered = fill.deliver(*p, model, spec, pi);
                    for q in &mut delivered {
                        q.proc_index = pi;
                    }
                    if delivered.is_empty() {
                        // The source cannot carry this cube at all;
                        // keep searching other procedures.
                        undeliverable = true;
                        continue;
                    }
                    if delivered.len() == 1 {
                        // Exact delivery: the cube's detection
                        // guarantee holds, same path as random fill.
                        let idx = patterns.push(delivered.pop().expect("one pattern"));
                        list.set_status(
                            fault,
                            FaultStatus::Detected {
                                pattern: idx as u32,
                            },
                        );
                        pending[pi].push(idx);
                    } else {
                        // Split delivery: the care bits are spread over
                        // several patterns, so the target must be
                        // re-graded — no single pattern is guaranteed
                        // to detect it.
                        let idxs: Vec<usize> =
                            delivered.iter().map(|q| patterns.push(q.clone())).collect();
                        let good = simulate_good(model, spec, &delivered);
                        stats.fsim_batches += 1;
                        let mask = engine.detect_batch(spec, &good, &[fault])[0];
                        if mask == 0 {
                            undeliverable = true;
                        } else {
                            let bit = mask.trailing_zeros() as usize;
                            list.set_status(
                                fault,
                                FaultStatus::Detected {
                                    pattern: idxs[bit] as u32,
                                },
                            );
                        }
                        pending[pi].extend(idxs);
                        if mask == 0 {
                            // Keep the patterns (they still drop other
                            // faults at the next flush) but try the
                            // remaining procedures for this one.
                            while pending[pi].len() >= 64 {
                                let mut batch: Vec<usize> = pending[pi].drain(..64).collect();
                                flush_batch(
                                    model, engine, &patterns, procedures, pi, &mut batch,
                                    &mut list, &mut stats,
                                );
                            }
                            continue;
                        }
                    }
                    while pending[pi].len() >= 64 {
                        let mut batch: Vec<usize> = pending[pi].drain(..64).collect();
                        flush_batch(
                            model, engine, &patterns, procedures, pi, &mut batch, &mut list,
                            &mut stats,
                        );
                    }
                    found = true;
                    break;
                }
                PodemOutcome::Aborted => {
                    any_abort = true;
                    stats.aborted_calls += 1;
                }
                PodemOutcome::Untestable => {}
            }
        }
        if !found && !undeliverable {
            list.set_status(
                fault,
                if any_abort {
                    FaultStatus::Aborted
                } else {
                    FaultStatus::Untestable
                },
            );
        }
    }

    for (pi, slot) in pending.iter_mut().enumerate() {
        if !slot.is_empty() {
            let mut batch = std::mem::take(slot);
            flush_batch(
                model, engine, &patterns, procedures, pi, &mut batch, &mut list, &mut stats,
            );
        }
    }
    stats.patterns_before_compaction = patterns.len();
    phase_span.attr_u64("targeted", stats.targeted as u64);
    phase_span.attr_u64("tests_found", stats.tests_found as u64);
    phase_span.attr_u64("patterns", patterns.len() as u64);
    drop(phase_span);

    if options.compaction {
        let mut phase_span = occ_obs::span("atpg.compaction");
        phase_span.attr_u64("before", patterns.len() as u64);
        let (compacted, regraded) = reverse_compact(
            model, procedures, &patterns, &list, engine, &mut stats, cancel,
        )?;
        phase_span.attr_u64("after", compacted.len() as u64);
        return Ok(AtpgResult {
            patterns: compacted,
            faults: regraded,
            stats,
        });
    }

    // Final soundness check: trip states are permanent, so a live token
    // here proves no earlier grading pass was truncated.
    if let Some(cause) = cancel.cause() {
        return Err(cause);
    }
    Ok(AtpgResult {
        patterns,
        faults: list,
        stats,
    })
}

/// Fault-simulates one batch of same-procedure patterns against every
/// undetected fault.
#[allow(clippy::too_many_arguments)]
fn flush_batch(
    model: &CaptureModel<'_>,
    engine: &mut dyn FaultSimEngine,
    patterns: &PatternSet,
    procedures: &[FrameSpec],
    pi: usize,
    batch: &mut Vec<usize>,
    list: &mut FaultList,
    stats: &mut AtpgStats,
) {
    if batch.is_empty() {
        return;
    }
    stats.fsim_batches += 1;
    let pats: Vec<Pattern> = batch
        .iter()
        .map(|&i| patterns.patterns()[i].clone())
        .collect();
    let good = simulate_good(model, &procedures[pi], &pats);
    // Grade every non-detected fault, including aborted/untestable
    // verdicts from other procedures: fortuitous detection overrides.
    let candidates: Vec<occ_fault::Fault> = list
        .iter()
        .filter(|(_, s)| !s.is_detected())
        .map(|(f, _)| f)
        .collect();
    apply_detections(engine, &procedures[pi], &good, &candidates, list, |bit| {
        batch[bit] as u32
    });
    batch.clear();
}

/// Reverse-order static compaction: grade patterns from last to first,
/// keep only those that newly detect something, then re-grade the kept
/// set front-to-back for final statuses and pattern indices. Grading
/// goes through the same pluggable [`FaultSimEngine`] as the main flow.
#[allow(clippy::too_many_arguments)]
fn reverse_compact(
    model: &CaptureModel<'_>,
    procedures: &[FrameSpec],
    patterns: &PatternSet,
    list: &FaultList,
    engine: &mut dyn FaultSimEngine,
    stats: &mut AtpgStats,
    cancel: &CancelToken,
) -> Result<(PatternSet, FaultList), CancelCause> {
    let mut shadow = FaultList::new(list.universe().clone());
    let mut keep: Vec<usize> = Vec::new();
    for idx in (0..patterns.len()).rev() {
        if let Some(cause) = cancel.cause() {
            return Err(cause);
        }
        let p = &patterns.patterns()[idx];
        let spec = &procedures[p.proc_index];
        let good = simulate_good(model, spec, std::slice::from_ref(p));
        stats.fsim_batches += 1;
        let undetected: Vec<occ_fault::Fault> = shadow.undetected().collect();
        let masks = engine.detect_batch(spec, &good, &undetected);
        let mut contributes = false;
        for (&fault, &mask) in undetected.iter().zip(&masks) {
            if mask & 1 == 1 {
                shadow.set_status(fault, FaultStatus::Detected { pattern: 0 });
                contributes = true;
            }
        }
        if contributes {
            keep.push(idx);
        }
    }
    keep.sort_unstable();

    let mut compacted = PatternSet::new(procedures.to_vec());
    for &idx in &keep {
        compacted.push(patterns.patterns()[idx].clone());
    }

    // Final grading pass over the kept set, preserving the ATPG's
    // untestable/aborted verdicts for whatever stays undetected.
    let mut final_list = FaultList::new(list.universe().clone());
    for (pi, spec) in procedures.iter().enumerate() {
        let idxs: Vec<usize> = (0..compacted.len())
            .filter(|&i| compacted.patterns()[i].proc_index == pi)
            .collect();
        for chunk in idxs.chunks(64) {
            if let Some(cause) = cancel.cause() {
                return Err(cause);
            }
            stats.fsim_batches += 1;
            let pats: Vec<Pattern> = chunk
                .iter()
                .map(|&i| compacted.patterns()[i].clone())
                .collect();
            let good = simulate_good(model, spec, &pats);
            let undetected: Vec<occ_fault::Fault> = final_list.undetected().collect();
            apply_detections(engine, spec, &good, &undetected, &mut final_list, |bit| {
                chunk[bit] as u32
            });
        }
    }
    // Carry over proven classifications.
    for (fault, status) in list.iter() {
        if final_list.status(fault) == FaultStatus::Undetected {
            match status {
                FaultStatus::Untestable => final_list.set_status(fault, FaultStatus::Untestable),
                FaultStatus::Aborted => final_list.set_status(fault, FaultStatus::Aborted),
                FaultStatus::Constrained => final_list.set_status(fault, FaultStatus::Constrained),
                _ => {}
            }
        }
    }
    // See run_atpg_cancellable: a live token here proves no truncation.
    if let Some(cause) = cancel.cause() {
        return Err(cause);
    }
    Ok((compacted, final_list))
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_fault::FaultUniverse;
    use occ_fsim::{ClockBinding, CycleSpec, FaultSim, ParallelFaultSim};
    use occ_netlist::NetlistBuilder;

    fn rig() -> (occ_netlist::Netlist, occ_netlist::CellId) {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let a = b.input("a");
        let c = b.input("b");
        let f0 = b.sdff(a, clk, se, si);
        let f1 = b.sdff(c, clk, se, f0);
        let g1 = b.and2(f0, f1);
        let g2 = b.xor2(g1, c);
        let f2 = b.sdff(g2, clk, se, f1);
        let g3 = b.nor2(f2, g1);
        let f3 = b.sdff(g3, clk, se, f2);
        b.output("po", g3);
        b.output("q", f3);
        (b.finish().unwrap(), clk)
    }

    fn run_serial(
        model: &CaptureModel<'_>,
        procs: &[FrameSpec],
        universe: FaultUniverse,
        options: &AtpgOptions,
    ) -> AtpgResult {
        let mut engine = FaultSim::new(model);
        let mut podem = crate::CompiledPodem::new(model);
        run_atpg(model, procs, universe, options, &mut engine, &mut podem)
    }

    #[test]
    fn stuck_at_flow_reaches_high_coverage() {
        let (nl, clk) = rig();
        let mut binding = ClockBinding::new();
        binding.add_domain("c", clk);
        binding.constrain(nl.find("se").unwrap(), Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        let model = CaptureModel::new(&nl, binding).unwrap();
        let procs = vec![FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])])];
        let result = run_serial(
            &model,
            &procs,
            FaultUniverse::stuck_at(&nl),
            &AtpgOptions::default(),
        );
        let report = result.report();
        // Small clean circuit: everything should resolve, coverage high.
        assert!(report.coverage_pct() > 80.0, "report: {report}");
        assert!(report.efficiency_pct() > 99.0, "report: {report}");
        assert!(!result.patterns.is_empty());
        // Every detected fault's pattern index is in range.
        for (_, status) in result.faults.iter() {
            if let FaultStatus::Detected { pattern } = status {
                assert!((pattern as usize) < result.patterns.len());
            }
        }
    }

    #[test]
    fn transition_flow_generates_two_frame_tests() {
        let (nl, clk) = rig();
        let mut binding = ClockBinding::new();
        binding.add_domain("c", clk);
        binding.constrain(nl.find("se").unwrap(), Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        let model = CaptureModel::new(&nl, binding).unwrap();
        let procs = vec![FrameSpec::broadside("loc", &[0], 2)
            .hold_pi(true)
            .observe_po(false)];
        let result = run_serial(
            &model,
            &procs,
            FaultUniverse::transition(&nl),
            &AtpgOptions::default(),
        );
        let report = result.report();
        assert!(report.detected > 0);
        assert!(report.efficiency_pct() > 95.0, "report: {report}");
    }

    #[test]
    fn compaction_never_reduces_coverage() {
        let (nl, clk) = rig();
        let mut binding = ClockBinding::new();
        binding.add_domain("c", clk);
        binding.constrain(nl.find("se").unwrap(), Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        let model = CaptureModel::new(&nl, binding).unwrap();
        let procs = vec![FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])])];
        let uni = FaultUniverse::stuck_at(&nl);
        let with = run_serial(
            &model,
            &procs,
            uni.clone(),
            &AtpgOptions {
                compaction: true,
                ..AtpgOptions::default()
            },
        );
        let without = run_serial(
            &model,
            &procs,
            uni,
            &AtpgOptions {
                compaction: false,
                ..AtpgOptions::default()
            },
        );
        assert_eq!(with.report().detected, without.report().detected);
        assert!(with.patterns.len() <= without.patterns.len());
    }

    #[test]
    fn serial_and_sharded_engines_agree_end_to_end() {
        // The whole ATPG flow — bootstrap, PODEM drop, compaction —
        // must be invariant under the engine choice.
        let (nl, clk) = rig();
        let mut binding = ClockBinding::new();
        binding.add_domain("c", clk);
        binding.constrain(nl.find("se").unwrap(), Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        let model = CaptureModel::new(&nl, binding).unwrap();
        let procs = vec![FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])])];
        let uni = FaultUniverse::stuck_at(&nl);
        let options = AtpgOptions::default();

        let serial = run_serial(&model, &procs, uni.clone(), &options);
        let mut sharded_engine = ParallelFaultSim::with_threads(&model, 4).block_size(2);
        let mut podem = crate::CompiledPodem::new(&model);
        let sharded = run_atpg(
            &model,
            &procs,
            uni,
            &options,
            &mut sharded_engine,
            &mut podem,
        );

        assert_eq!(serial.report(), sharded.report());
        assert_eq!(serial.patterns.len(), sharded.patterns.len());
        assert_eq!(serial.stats, sharded.stats);
        for (fault, status) in serial.faults.iter() {
            assert_eq!(status, sharded.faults.status(fault), "fault {fault}");
        }
    }
}
