//! Equivalence of the three PPSFP engines on seeded random SOCs.
//!
//! The compiled zero-allocation kernel (`FaultSim`), the retained
//! pre-kernel engine (`ReferenceFaultSim`) and the sharded scheduler
//! (`ParallelFaultSim`) must produce **bit-identical** detection masks
//! for every fault, over both fault models and the capture procedures
//! of every clocking mode of the paper — plus a direct check that cone
//! pruning never drops a detectable fault.

use occ::core::{stuck_at_procedures, transition_procedures, ClockingMode};
use occ::fault::FaultUniverse;
use occ::fsim::{
    simulate_good, CaptureModel, ClockBinding, CycleSpec, FaultSim, FrameSpec, ParallelFaultSim,
    Pattern, ReferenceFaultSim,
};
use occ::netlist::{Logic, Netlist, NetlistBuilder};
use occ::soc::{generate, SocConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All clocking modes of Table 1.
fn all_modes() -> [ClockingMode; 4] {
    [
        ClockingMode::ExternalClock { max_pulses: 3 },
        ClockingMode::SimpleCpf,
        ClockingMode::EnhancedCpf { max_pulses: 3 },
        ClockingMode::ConstrainedExternal { max_pulses: 3 },
    ]
}

fn random_patterns(
    model: &CaptureModel<'_>,
    spec: &FrameSpec,
    n: usize,
    seed: u64,
) -> Vec<Pattern> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut p = Pattern::empty(model, spec, 0);
            p.fill_x(|| Logic::from_bool(rng.gen_bool(0.5)));
            p
        })
        .collect()
}

/// Reference vs kernel vs sharded over one (SOC, spec, universe) cell.
fn check_spec(
    model: &CaptureModel<'_>,
    spec: &FrameSpec,
    universe: &FaultUniverse,
    seed: u64,
) -> usize {
    let patterns = random_patterns(model, spec, 16, seed);
    let good = simulate_good(model, spec, &patterns);
    let faults = universe.faults().to_vec();

    let reference = ReferenceFaultSim::new(model).detect_many(spec, &good, &faults);
    let kernel = FaultSim::new(model).detect_many(spec, &good, &faults);
    assert_eq!(
        reference, kernel,
        "kernel diverged from reference on spec '{spec}'"
    );
    for threads in [2usize, 5] {
        let sharded = ParallelFaultSim::with_threads(model, threads)
            .block_size(32)
            .detect_many(spec, &good, &faults);
        assert_eq!(
            reference, sharded,
            "sharded ({threads} threads) diverged on spec '{spec}'"
        );
    }
    reference.iter().filter(|&&m| m != 0).count()
}

#[test]
fn engines_bit_identical_across_socs_models_and_clocking_modes() {
    let mut total_detected = 0usize;
    let mut total_specs = 0usize;
    for seed in [3u64, 17] {
        let soc = generate(&SocConfig::tiny(seed));
        let model = CaptureModel::new(soc.netlist(), soc.binding(true)).unwrap();
        let n_domains = model.domain_count();
        let stuck = FaultUniverse::stuck_at(soc.netlist());
        let transition = FaultUniverse::transition(soc.netlist());

        for mode in all_modes() {
            for spec in transition_procedures(mode, n_domains) {
                total_detected += check_spec(&model, &spec, &transition, seed ^ 0xA5);
                total_specs += 1;
            }
            for spec in stuck_at_procedures(mode, n_domains) {
                total_detected += check_spec(&model, &spec, &stuck, seed ^ 0x5A);
                total_specs += 1;
            }
        }
    }
    assert!(total_specs >= 16, "expected a broad spec sweep");
    assert!(
        total_detected > 100,
        "degenerate sweep: only {total_detected} detections"
    );
}

/// A two-domain rig whose async reset net is *driven by internal
/// logic* (not a held PI): domain `a` holds two scan flops, domain `b`
/// holds a `DffRh` whose active-high reset is a function of the
/// domain-`a` states. Frames that pulse only domain `a` leave the
/// `DffRh` non-pulsed while its (possibly faulty) reset net toggles —
/// exactly the corner of the workspace reset contract
/// (`occ_fsim::FaultSim::capture_flop`, "reset semantics").
fn reset_logic_rig() -> (Netlist, ClockBinding) {
    let mut b = NetlistBuilder::new("reset_rig");
    let clka = b.input("clka");
    let clkb = b.input("clkb");
    let se = b.input("se");
    let si = b.input("si");
    let d = b.input("d");
    let f0 = b.sdff(d, clka, se, si);
    let inv = b.not(f0);
    let f1 = b.sdff(inv, clka, se, f0);
    let rst = b.and2(f0, f1);
    let xo = b.xor2(f0, d);
    let fb = b.dff_rh(xo, clkb, rst);
    let obs = b.or2(fb, f1);
    b.output("q", obs);
    let nl = b.finish().unwrap();
    let mut binding = ClockBinding::new();
    binding.add_domain("a", clka);
    binding.add_domain("b", clkb);
    binding.constrain(se, Logic::Zero);
    binding.mask(si);
    (nl, binding)
}

#[test]
fn reset_driven_by_logic_agrees_across_engines() {
    // All three PPSFP engines must agree on the rig for every fault —
    // including specs where the DffRh is never pulsed but its faulty
    // reset net is active (the non-pulsed carry rule), and specs where
    // it is pulsed later (the reset acts on the sampled state).
    let (nl, binding) = reset_logic_rig();
    let model = CaptureModel::new(&nl, binding).unwrap();
    let specs = [
        FrameSpec::new("a_only", vec![CycleSpec::pulsing(&[0]); 2]).hold_pi(true),
        FrameSpec::new(
            "a_then_b",
            vec![
                CycleSpec::pulsing(&[0]),
                CycleSpec::pulsing(&[0]),
                CycleSpec::pulsing(&[1]),
            ],
        )
        .hold_pi(true),
        FrameSpec::new("both", vec![CycleSpec::pulsing(&[0, 1]); 2]).hold_pi(true),
    ];
    let mut detected = 0usize;
    for universe in [FaultUniverse::stuck_at(&nl), FaultUniverse::transition(&nl)] {
        for spec in &specs {
            detected += check_spec(&model, spec, &universe, 0xD0_05);
        }
    }
    assert!(detected > 0, "degenerate rig: nothing detected");
}

#[test]
fn cone_pruning_never_drops_a_detectable_fault() {
    // For every fault the kernel prunes (effect cell outside the
    // observability cone), the reference engine must agree the fault is
    // undetected — on a PO-observing spec and on a PO-masked one.
    let soc = generate(&SocConfig::tiny(9));
    let model = CaptureModel::new(soc.netlist(), soc.binding(true)).unwrap();
    let graph = model.graph();
    let domains: Vec<usize> = (0..model.domain_count()).collect();
    let faults = FaultUniverse::stuck_at(soc.netlist()).faults().to_vec();

    let observing = FrameSpec::new("obs", vec![occ::fsim::CycleSpec::pulsing(&domains)]);
    let masked = FrameSpec::broadside("msk", &domains, 2)
        .hold_pi(true)
        .observe_po(false);

    for (spec, with_po) in [(&observing, true), (&masked, false)] {
        let patterns = random_patterns(&model, spec, 32, 0x0CC);
        let good = simulate_good(&model, spec, &patterns);
        let mut reference = ReferenceFaultSim::new(&model);
        let mut pruned = 0usize;
        for &fault in &faults {
            if !graph.observable(fault.site().effect_cell(), with_po) {
                pruned += 1;
                assert_eq!(
                    reference.detect(spec, &good, fault),
                    0,
                    "cone pruning would drop detectable fault {fault} \
                     (spec '{spec}')"
                );
            }
        }
        // The tiny SOC has masked bidi feedback and RAM surroundings,
        // so some faults must actually be prunable under scan-only
        // observation; the PO-observing cone may legitimately be full.
        if !with_po {
            assert!(pruned > 0, "no fault pruned — cone test is vacuous");
        }
    }
}
