//! Engine micro-benches (ablation-style): packed PPSFP fault simulation
//! vs the scalar dual simulator, good-machine batch simulation, EDT
//! encode/expand, scan insertion and event-driven CPF simulation.
//! These quantify the workspace's core design choices (64-slot
//! packing, event-driven propagation, linear-solver encoding).

use criterion::{criterion_group, criterion_main, Criterion};
use occ_atpg::DualSim;
use occ_core::{ClockPulseFilter, CpfConfig, Pll, PllConfig};
use occ_dft::{insert_scan, EdtCodec, EdtConfig, ScanConfig};
use occ_fault::FaultUniverse;
use occ_fsim::{simulate_good, CaptureModel, FaultSim, FrameSpec, Pattern};
use occ_netlist::Logic;
use occ_sim::{DelayModel, EventSim, Waveform};
use occ_soc::{generate, SocConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_engines(c: &mut Criterion) {
    let soc = generate(&SocConfig::paper_like(3, 60));
    let binding = soc.binding(true);
    let model = CaptureModel::new(soc.netlist(), binding).unwrap();
    let spec = FrameSpec::broadside("loc", &[0, 1], 2)
        .hold_pi(true)
        .observe_po(false);
    let uni = FaultUniverse::transition(soc.netlist());
    let mut rng = StdRng::seed_from_u64(5);
    let patterns: Vec<Pattern> = (0..64)
        .map(|_| {
            let mut p = Pattern::empty(&model, &spec, 0);
            p.fill_x(|| Logic::from_bool(rng.gen_bool(0.5)));
            p
        })
        .collect();

    let mut group = c.benchmark_group("engines");
    group.sample_size(10);

    group.bench_function("good_sim_64_patterns", |b| {
        b.iter(|| criterion::black_box(simulate_good(&model, &spec, &patterns).frames.len()));
    });

    let good = simulate_good(&model, &spec, &patterns);
    group.bench_function("ppsfp_1k_faults_64_patterns", |b| {
        let mut fsim = FaultSim::new(&model);
        let faults: Vec<_> = uni.faults().iter().copied().take(1_000).collect();
        b.iter(|| {
            let mut hits = 0u32;
            for &f in &faults {
                if fsim.detect(&spec, &good, f) != 0 {
                    hits += 1;
                }
            }
            criterion::black_box(hits)
        });
    });

    group.bench_function("scalar_dual_sim_100_faults", |b| {
        let mut ds = DualSim::new(&model);
        let faults: Vec<_> = uni.faults().iter().copied().take(100).collect();
        b.iter(|| {
            let mut hits = 0u32;
            for &f in &faults {
                ds.simulate(&spec, &patterns[0], f);
                if ds.detected(&spec, f) {
                    hits += 1;
                }
            }
            criterion::black_box(hits)
        });
    });

    group.bench_function("scan_insertion", |b| {
        let plain = occ_soc::shift_chain(64);
        b.iter(|| {
            let sc = insert_scan(&plain, &ScanConfig::new(4)).unwrap();
            criterion::black_box(sc.max_chain_len())
        });
    });

    group.bench_function("edt_encode_64_cares", |b| {
        let codec = EdtCodec::new(EdtConfig {
            channels: 4,
            chains: 64,
            shift_len: 40,
            lfsr_len: 64,
            warmup: 16,
            seed: 1,
        });
        let mut rng = StdRng::seed_from_u64(11);
        let cares: Vec<(usize, usize, bool)> = (0..64)
            .map(|_| {
                (
                    rng.gen_range(0..64),
                    rng.gen_range(0..40),
                    rng.gen_bool(0.5),
                )
            })
            .collect();
        b.iter(|| criterion::black_box(codec.encode(&cares).map(|v| v.len())));
    });

    group.bench_function("event_sim_cpf_episode", |b| {
        let cpf = ClockPulseFilter::generate(&CpfConfig::paper());
        let pll = Pll::new(PllConfig::paper());
        let ports = *cpf.ports();
        b.iter(|| {
            let mut sim = EventSim::new(cpf.netlist(), DelayModel::default());
            sim.drive(ports.pll_clk, pll.domain_waveform(1, 800_000));
            sim.drive(
                ports.scan_en,
                Waveform::steps(&[(0, Logic::One), (250_000, Logic::Zero)]),
            );
            sim.drive(ports.scan_clk, Waveform::pulse(300_000, 320_000));
            sim.run_until(800_000);
            criterion::black_box(sim.now())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
