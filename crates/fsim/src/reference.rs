//! The retained pre-kernel PPSFP engine.
//!
//! [`ReferenceFaultSim`] is a byte-for-byte port of the original
//! allocation-heavy `FaultSim::detect` hot path: per-frame `Vec`s for
//! the carried state and flop candidates (with `sort_unstable` +
//! `dedup`), `HashMap`s for the state diffs, and a fresh input `Vec`
//! per cell evaluation. It is kept for two jobs:
//!
//! * **correctness oracle** — the compiled kernel in
//!   [`FaultSim`](crate::FaultSim) must produce bit-identical detection
//!   masks (cross-checked in `tests/kernel_equivalence.rs`);
//! * **perf baseline** — `fsim_bench` times it against the kernel so
//!   the speedup from allocation removal and cone pruning is recorded
//!   in `BENCH_fsim.json` instead of vanishing with the old code.
//!
//! Do not use it in flows: it is strictly slower than
//! [`FaultSim`](crate::FaultSim) and gains no new features.

use crate::faultsim::{forced_val, site_node};
use crate::goodsim::GoodBatch;
use crate::pval::{eval_packed, PVal};
use crate::{CaptureModel, FrameSpec};
use occ_fault::{Fault, FaultModel, FaultSite, Polarity};
use occ_netlist::{CellId, CellKind};

/// The pre-kernel PPSFP engine, bound to one capture model.
///
/// Semantics are identical to [`FaultSim`](crate::FaultSim) — same
/// detection masks for every fault, procedure and batch — but every
/// frame allocates its worklists and state maps. See the module docs
/// for why it is kept.
#[derive(Debug)]
pub struct ReferenceFaultSim<'m, 'a> {
    model: &'m CaptureModel<'a>,
    // Faulty node values with generation stamps (valid when stamp==gen).
    fval: Vec<PVal>,
    fstamp: Vec<u32>,
    gen: u32,
    // Levelized worklist buckets and enqueue stamps.
    buckets: Vec<Vec<u32>>,
    enq: Vec<u32>,
    // Touched-flop dedup stamps.
    flop_stamp: Vec<u32>,
}

impl<'m, 'a> ReferenceFaultSim<'m, 'a> {
    /// Creates an engine with scratch space sized for the model.
    pub fn new(model: &'m CaptureModel<'a>) -> Self {
        let n = model.netlist().len();
        let levels = model.netlist().levelization().max_level() as usize + 1;
        ReferenceFaultSim {
            model,
            fval: vec![PVal::XX; n],
            fstamp: vec![0; n],
            gen: 0,
            buckets: vec![Vec::new(); levels],
            enq: vec![0; n],
            flop_stamp: vec![0; model.flops().len()],
        }
    }

    /// Returns the detection mask (bit per pattern) for one fault.
    pub fn detect(&mut self, spec: &FrameSpec, good: &GoodBatch, fault: Fault) -> u64 {
        let site_node = site_node(self.model, fault.site());
        let frames = spec.frames();

        // Launch requirement for transition faults.
        let launch_mask = match fault.model() {
            FaultModel::StuckAt => good.valid_mask,
            FaultModel::Transition => {
                if frames < 2 {
                    return 0;
                }
                let before = good.frames[frames - 2][site_node.index()];
                let after = good.frames[frames - 1][site_node.index()];
                let m = match fault.polarity() {
                    Polarity::P0 => before.def0() & after.def1(), // slow-to-rise
                    Polarity::P1 => before.def1() & after.def0(), // slow-to-fall
                };
                m & good.valid_mask
            }
        };
        if launch_mask == 0 {
            return 0;
        }

        let first_active = match fault.model() {
            FaultModel::StuckAt => 1,
            FaultModel::Transition => frames,
        };

        let mut fstate: Vec<(u32, PVal)> = Vec::new();
        let mut po_diff = 0u64;

        for k in first_active..=frames {
            let active = match fault.model() {
                FaultModel::StuckAt => true,
                FaultModel::Transition => k == frames,
            };
            if !active && fstate.is_empty() {
                continue;
            }

            self.gen += 1;
            let gvals = &good.frames[k - 1];
            let mut touched_flops: Vec<u32> = Vec::new();

            // Seed 1: carried-in state differences.
            let carried: Vec<(u32, PVal)> = fstate.clone();
            for (fi, fv) in carried {
                let cell = self.model.flops()[fi as usize].cell;
                self.fval[cell.index()] = fv;
                self.fstamp[cell.index()] = self.gen;
                self.push_fanouts(cell, &mut touched_flops);
            }

            // Seed 2: the fault site.
            if active {
                match fault.site() {
                    FaultSite::Output(c) => {
                        let forced = forced_val(fault.polarity());
                        self.fval[c.index()] = forced;
                        self.fstamp[c.index()] = self.gen;
                        if forced != gvals[c.index()] {
                            self.push_fanouts(c, &mut touched_flops);
                        }
                    }
                    FaultSite::Input { cell, .. } => {
                        // Evaluate the consuming cell with the pin forced.
                        let v = self.eval_faulty(cell, gvals, Some(fault));
                        if v != gvals[cell.index()] {
                            self.fval[cell.index()] = v;
                            self.fstamp[cell.index()] = self.gen;
                            self.push_fanouts(cell, &mut touched_flops);
                        }
                    }
                }
            }

            // Propagate level by level.
            for lvl in 0..self.buckets.len() {
                while let Some(raw) = self.buckets[lvl].pop() {
                    let id = CellId::from_index(raw as usize);
                    // The forced output site never re-evaluates.
                    if active && fault.site() == FaultSite::Output(id) {
                        continue;
                    }
                    let pin_fault = match fault.site() {
                        FaultSite::Input { cell, .. } if active && cell == id => Some(fault),
                        _ => None,
                    };
                    let was_stamped = self.fstamp[id.index()] == self.gen;
                    let v = self.eval_faulty(id, gvals, pin_fault);
                    if was_stamped {
                        // Re-evaluation of an already-seeded node (an
                        // input-site cell reached again from upstream):
                        // refresh and re-notify; dedup keeps this cheap.
                        self.fval[id.index()] = v;
                        self.push_fanouts(id, &mut touched_flops);
                    } else if v != gvals[id.index()] {
                        self.fval[id.index()] = v;
                        self.fstamp[id.index()] = self.gen;
                        self.push_fanouts(id, &mut touched_flops);
                    }
                }
            }

            // Primary-output observation.
            if spec.po_observe_frames().contains(&k) {
                for &po in self.model.primary_outputs() {
                    if self.fstamp[po.index()] == self.gen {
                        po_diff |= gvals[po.index()].definite_diff(self.fval[po.index()]);
                    }
                }
            }

            // Next faulty state.
            let cycle = &spec.cycles()[k - 1];
            let mut next: Vec<(u32, PVal)> = Vec::new();
            let mut candidates: Vec<u32> = fstate.iter().map(|&(fi, _)| fi).collect();
            candidates.extend(touched_flops.iter().copied());
            candidates.sort_unstable();
            candidates.dedup();
            let prev_state_diffs: std::collections::HashMap<u32, PVal> =
                fstate.iter().copied().collect();
            for fi in candidates {
                let info = self.model.flops()[fi as usize];
                let good_next = good.states[k][fi as usize];
                let faulty_next = if cycle.pulses_domain(info.domain) {
                    let sampled = self.sample_flop_faulty(info.cell, gvals);
                    self.apply_reset_faulty(info.cell, gvals, sampled)
                } else {
                    prev_state_diffs
                        .get(&fi)
                        .copied()
                        .unwrap_or(good.states[k - 1][fi as usize])
                };
                if faulty_next != good_next {
                    next.push((fi, faulty_next));
                }
            }
            fstate = next;
        }

        // Detection: scan-state differences at unload + observed POs.
        let mut detect = po_diff;
        let final_state: std::collections::HashMap<u32, PVal> = fstate.into_iter().collect();
        for &fi in self.model.scan_flops() {
            let good_v = good.states[frames][fi as usize];
            let mut faulty_v = final_state.get(&fi).copied().unwrap_or(good_v);
            // A *stuck* output on the scan flop itself is observed
            // directly during unload (the chain reads the Q net). A
            // transition fault is not: unload shifting is slow, so the
            // slow edge has settled by the time the chain samples.
            if fault.model() == FaultModel::StuckAt {
                if let FaultSite::Output(c) = fault.site() {
                    if c == self.model.flops()[fi as usize].cell {
                        faulty_v = forced_val(fault.polarity());
                    }
                }
            }
            detect |= good_v.definite_diff(faulty_v);
        }

        detect & launch_mask & good.valid_mask
    }

    /// Detects a batch of faults, returning one mask per fault.
    pub fn detect_many(
        &mut self,
        spec: &FrameSpec,
        good: &GoodBatch,
        faults: &[Fault],
    ) -> Vec<u64> {
        faults.iter().map(|&f| self.detect(spec, good, f)).collect()
    }

    /// Evaluates one cell with faulty input values (and an optional pin
    /// override for an active input-site fault on this cell).
    fn eval_faulty(&self, id: CellId, gvals: &[PVal], pin_fault: Option<Fault>) -> PVal {
        let cell = self.model.netlist().cell(id);
        let kind = cell.kind();
        if !kind.is_combinational() {
            // Flop/latch/ram nodes keep their frame value.
            return if self.fstamp[id.index()] == self.gen {
                self.fval[id.index()]
            } else {
                gvals[id.index()]
            };
        }
        let mut ins: Vec<PVal> = Vec::with_capacity(cell.inputs().len());
        for &src in cell.inputs() {
            ins.push(if self.fstamp[src.index()] == self.gen {
                self.fval[src.index()]
            } else {
                gvals[src.index()]
            });
        }
        if let Some(f) = pin_fault {
            if let FaultSite::Input { pin, .. } = f.site() {
                ins[pin as usize] = forced_val(f.polarity());
            }
        }
        eval_packed(kind, &ins).unwrap_or(PVal::XX)
    }

    fn sample_flop_faulty(&self, flop: CellId, gvals: &[PVal]) -> PVal {
        let cell = self.model.netlist().cell(flop);
        let read = |src: CellId| {
            if self.fstamp[src.index()] == self.gen {
                self.fval[src.index()]
            } else {
                gvals[src.index()]
            }
        };
        match cell.kind() {
            CellKind::Sdff | CellKind::SdffRl => {
                let d = read(cell.inputs()[0]);
                let se = read(cell.inputs()[2]);
                let si = read(cell.inputs()[3]);
                PVal::mux2(se, d, si)
            }
            _ => read(cell.inputs()[0]),
        }
    }

    fn apply_reset_faulty(&self, flop: CellId, gvals: &[PVal], state: PVal) -> PVal {
        let cell = self.model.netlist().cell(flop);
        let Some(rpin) = cell.reset() else {
            return state;
        };
        let rv = if self.fstamp[rpin.index()] == self.gen {
            self.fval[rpin.index()]
        } else {
            gvals[rpin.index()]
        };
        let active = match cell.kind() {
            CellKind::DffRh => rv.def1(),
            _ => rv.def0(),
        };
        let state = state.force(active, false);
        state.blend(PVal::XX, rv.x & !state.def0())
    }

    fn push_fanouts(&mut self, id: CellId, touched_flops: &mut Vec<u32>) {
        let netlist = self.model.netlist();
        let lev = netlist.levelization();
        for &f in netlist.fanouts(id) {
            let kind = netlist.cell(f).kind();
            if kind.is_flop() {
                if let Some(fi) = self.model.flop_index(f) {
                    if self.flop_stamp[fi] != self.gen {
                        self.flop_stamp[fi] = self.gen;
                        touched_flops.push(fi as u32);
                    }
                }
            } else if kind.is_combinational() && self.enq[f.index()] != self.gen {
                self.enq[f.index()] = self.gen;
                self.buckets[lev.level(f) as usize].push(f.index() as u32);
            }
        }
    }
}
