//! The pluggable fault-simulation engine interface.
//!
//! ATPG and static compaction only ever need one operation from a fault
//! simulator: *grade a batch of same-procedure patterns against a list
//! of faults and return one 64-bit detection mask per fault*. This
//! trait captures exactly that, so the serial [`FaultSim`] and the
//! sharded [`ParallelFaultSim`] are interchangeable behind
//! `&mut dyn FaultSimEngine` — and both are required (and tested) to
//! produce **bit-identical masks** for the same inputs.

use crate::cancel::CancelToken;
use crate::faultsim::FaultSim;
use crate::goodsim::GoodBatch;
use crate::graph::KernelStats;
use crate::parallel::ParallelFaultSim;
use crate::reference::ReferenceFaultSim;
use crate::FrameSpec;
use occ_fault::Fault;

/// A fault-grading engine: anything that can turn (procedure,
/// good-machine batch, fault list) into per-fault detection masks.
///
/// Implementations must be deterministic: the returned masks may not
/// depend on thread count, scheduling or any internal scratch state.
/// Bit `i` of `masks[j]` is set iff pattern `i` of the batch detects
/// `faults[j]`.
///
/// # Examples
///
/// ```
/// use occ_netlist::{NetlistBuilder, Logic};
/// use occ_fault::FaultUniverse;
/// use occ_fsim::{ClockBinding, CaptureModel, FrameSpec, CycleSpec, Pattern,
///                simulate_good, FaultSim, FaultSimEngine, ParallelFaultSim};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("t");
/// let clk = b.input("clk");
/// let d = b.input("d");
/// let se = b.input("se");
/// let si = b.input("si");
/// let ff = b.sdff(d, clk, se, si);
/// b.output("q", ff);
/// let nl = b.finish()?;
/// let mut binding = ClockBinding::new();
/// binding.add_domain("a", clk);
/// binding.constrain(se, Logic::Zero);
/// binding.mask(si);
/// let model = CaptureModel::new(&nl, binding)?;
///
/// let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
/// let mut p = Pattern::empty(&model, &spec, 0);
/// p.pis[0] = vec![Logic::One];
/// let good = simulate_good(&model, &spec, &[p]);
/// let faults = FaultUniverse::stuck_at(&nl).faults().to_vec();
///
/// // The same grading through either engine behind the trait object.
/// let mut serial = FaultSim::new(&model);
/// let mut sharded = ParallelFaultSim::with_threads(&model, 2);
/// let engines: [&mut dyn FaultSimEngine; 2] = [&mut serial, &mut sharded];
/// let masks: Vec<Vec<u64>> = engines
///     .into_iter()
///     .map(|e| e.detect_batch(&spec, &good, &faults))
///     .collect();
/// assert_eq!(masks[0], masks[1]);
/// # Ok(())
/// # }
/// ```
pub trait FaultSimEngine {
    /// Grades `faults` against the batch, returning one detection mask
    /// per fault (same order).
    fn detect_batch(&mut self, spec: &FrameSpec, good: &GoodBatch, faults: &[Fault]) -> Vec<u64>;

    /// A short human-readable engine label (for reports and logs).
    fn engine_name(&self) -> &'static str;

    /// Worker threads this engine grades with (`1` for serial engines).
    fn worker_threads(&self) -> usize {
        1
    }

    /// Compiled-kernel statistics accumulated by this engine (graph
    /// shape, cone-pruned faults, events propagated). Engines without a
    /// compiled kernel report all-zero stats.
    fn kernel_stats(&self) -> KernelStats {
        KernelStats::default()
    }

    /// Attaches a cooperative-cancellation token polled at batch-loop
    /// boundaries. Once the token trips, [`FaultSimEngine::detect_batch`]
    /// returns early with the remaining masks zeroed; the caller is
    /// expected to observe the trip and discard the batch. The default
    /// implementation ignores the token (the engine simply cannot be
    /// cancelled, which is always sound).
    fn attach_cancel(&mut self, token: CancelToken) {
        let _ = token;
    }
}

impl FaultSimEngine for FaultSim<'_> {
    fn detect_batch(&mut self, spec: &FrameSpec, good: &GoodBatch, faults: &[Fault]) -> Vec<u64> {
        self.detect_many(spec, good, faults)
    }

    fn engine_name(&self) -> &'static str {
        "serial"
    }

    fn kernel_stats(&self) -> KernelStats {
        FaultSim::kernel_stats(self)
    }

    fn attach_cancel(&mut self, token: CancelToken) {
        FaultSim::attach_cancel(self, token);
    }
}

impl FaultSimEngine for ParallelFaultSim<'_> {
    fn detect_batch(&mut self, spec: &FrameSpec, good: &GoodBatch, faults: &[Fault]) -> Vec<u64> {
        self.detect_many_cached(spec, good, faults)
    }

    fn engine_name(&self) -> &'static str {
        "sharded"
    }

    fn worker_threads(&self) -> usize {
        self.threads()
    }

    fn kernel_stats(&self) -> KernelStats {
        ParallelFaultSim::kernel_stats(self)
    }

    fn attach_cancel(&mut self, token: CancelToken) {
        ParallelFaultSim::attach_cancel(self, token);
    }
}

impl FaultSimEngine for ReferenceFaultSim<'_, '_> {
    fn detect_batch(&mut self, spec: &FrameSpec, good: &GoodBatch, faults: &[Fault]) -> Vec<u64> {
        self.detect_many(spec, good, faults)
    }

    fn engine_name(&self) -> &'static str {
        "reference"
    }
}
