//! ATE expansion: converting a capture procedure into the concrete pin
//! waveforms the tester applies.
//!
//! The paper (§4): "When the patterns are saved for the ATE, the
//! internal clock pulses are converted to the corresponding primary
//! input signals that will produce them." For the CPF protocol that
//! means (§3): stop `scan_clk`, drop `scan_en` with relaxed timing,
//! apply **one** `scan_clk` trigger pulse, wait for the burst, then
//! re-assert `scan_en` and resume shifting. "There is no need for a
//! high-speed relation between scan-clk and scan-en" and "no need to
//! synchronize the internal PLL clock to scan-clk or scan-en" — all
//! tester edges here sit on a slow, coarse grid.

use crate::{CpfBehavior, Pll};
use occ_sim::{Time, Waveform};

/// Slow-side timing parameters of the tester protocol.
#[derive(Debug, Clone)]
pub struct AteTiming {
    /// Scan shift clock period (slow external clock).
    pub shift_period_ps: Time,
    /// Settling gap between `scan_en` edges and neighbouring `scan_clk`
    /// activity ("once scan-en is stable...").
    pub settle_ps: Time,
}

impl AteTiming {
    /// A 20 MHz shift clock with a generous half-period settle gap.
    pub fn relaxed() -> Self {
        AteTiming {
            shift_period_ps: 50_000,
            settle_ps: 30_000,
        }
    }
}

/// The expanded pin program for one capture episode on one domain:
/// `scan_en` drop, trigger pulse, wait window, `scan_en` restore.
#[derive(Debug, Clone)]
pub struct AteExpansion {
    /// When `scan_en` falls.
    pub scan_en_fall: Time,
    /// Rising edge of the single `scan_clk` trigger pulse.
    pub trigger_rise: Time,
    /// Falling edge of the trigger pulse.
    pub trigger_fall: Time,
    /// Expected at-speed pulse edges on `clk_out` (from the behavioural
    /// model — what the ATPG assumed).
    pub expected_pulses: Vec<Time>,
    /// When `scan_en` rises again (capture episode over).
    pub scan_en_rise: Time,
}

impl AteExpansion {
    /// Expands one capture episode starting at `start` (a time after
    /// shifting has stopped), for a CPF on `domain` described by
    /// `behavior`.
    pub fn expand(
        behavior: &CpfBehavior,
        pll: &Pll,
        domain: usize,
        timing: &AteTiming,
        start: Time,
    ) -> AteExpansion {
        let scan_en_fall = start + timing.settle_ps;
        let trigger_rise = scan_en_fall + timing.settle_ps;
        let trigger_fall = trigger_rise + timing.shift_period_ps / 2;
        let expected_pulses = behavior.pulse_edges(pll, domain, trigger_rise);
        let done = behavior.capture_done_time(pll, domain, trigger_rise);
        let scan_en_rise = done.max(trigger_fall) + timing.settle_ps;
        AteExpansion {
            scan_en_fall,
            trigger_rise,
            trigger_fall,
            expected_pulses,
            scan_en_rise,
        }
    }

    /// The `scan_en` waveform for this episode (high before and after).
    pub fn scan_en_waveform(&self) -> Waveform {
        Waveform::steps(&[
            (0, occ_netlist::Logic::One),
            (self.scan_en_fall, occ_netlist::Logic::Zero),
            (self.scan_en_rise, occ_netlist::Logic::One),
        ])
    }

    /// The `scan_clk` waveform: idle low except the single trigger
    /// pulse (shift bursts before/after are appended by the caller).
    pub fn scan_clk_waveform(&self) -> Waveform {
        Waveform::steps(&[
            (0, occ_netlist::Logic::Zero),
            (self.trigger_rise, occ_netlist::Logic::One),
            (self.trigger_fall, occ_netlist::Logic::Zero),
        ])
    }

    /// Total episode duration from `scan_en` fall to restore.
    pub fn duration(&self) -> Time {
        self.scan_en_rise - self.scan_en_fall
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpfConfig, PllConfig};

    #[test]
    fn expansion_orders_events() {
        let pll = Pll::new(PllConfig::paper());
        let behavior = CpfBehavior::new(&CpfConfig::paper());
        let t = AteTiming::relaxed();
        let e = AteExpansion::expand(&behavior, &pll, 1, &t, 1_000_000);
        assert!(e.scan_en_fall < e.trigger_rise);
        assert!(e.trigger_rise < e.trigger_fall);
        assert_eq!(e.expected_pulses.len(), 2);
        assert!(e.expected_pulses[0] > e.trigger_rise);
        assert!(e.scan_en_rise > *e.expected_pulses.last().unwrap());
    }

    #[test]
    fn waveforms_reflect_events() {
        let pll = Pll::new(PllConfig::paper());
        let behavior = CpfBehavior::new(&CpfConfig::paper());
        let t = AteTiming::relaxed();
        let e = AteExpansion::expand(&behavior, &pll, 0, &t, 500_000);
        let se = e.scan_en_waveform();
        assert_eq!(se.value_at(e.scan_en_fall - 1), occ_netlist::Logic::One);
        assert_eq!(se.value_at(e.scan_en_fall), occ_netlist::Logic::Zero);
        assert_eq!(se.value_at(e.scan_en_rise), occ_netlist::Logic::One);
        let sck = e.scan_clk_waveform();
        assert_eq!(sck.value_at(e.trigger_rise), occ_netlist::Logic::One);
        assert_eq!(sck.value_at(e.trigger_fall), occ_netlist::Logic::Zero);
    }

    #[test]
    fn trigger_edges_are_slow_relative_to_pll() {
        let pll = Pll::new(PllConfig::paper());
        let behavior = CpfBehavior::new(&CpfConfig::paper());
        let t = AteTiming::relaxed();
        let e = AteExpansion::expand(&behavior, &pll, 1, &t, 0);
        // The whole episode spans many PLL periods: genuinely relaxed.
        assert!(e.duration() > 10 * pll.domain_period(1));
    }
}
