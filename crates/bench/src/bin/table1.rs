//! Reproduces the paper's Table 1: the five ATPG experiments (a)–(e).
//!
//! Usage:
//! ```text
//! table1 [row] [--flops N] [--seed S] [--limit B]
//! ```
//! With no row, all five experiments run and the full table plus the
//! paper-shape checks are printed. With a row label (`a`..`e`), only
//! that experiment runs.

use occ_bench::{run_experiment, run_table1, ExperimentId, Table1Options};
use occ_fault::FaultStatus;
use occ_soc::{generate, SocConfig};

fn main() {
    let mut options = Table1Options::default();
    let mut row: Option<ExperimentId> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flops" => {
                options.flops_per_domain = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--flops needs a number");
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--limit" => {
                options.backtrack_limit = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--limit needs a number");
            }
            other => {
                row = ExperimentId::parse(other);
                if row.is_none() {
                    eprintln!("unknown argument '{other}'");
                    std::process::exit(2);
                }
            }
        }
    }

    match row {
        Some(id) => {
            let soc = generate(&SocConfig::paper_like(
                options.seed,
                options.flops_per_domain,
            ));
            let r = run_experiment(&soc, id, &options);
            println!(
                "{} {}: coverage {:.2}%  efficiency {:.2}%  patterns {}  ({:.1}s)",
                r.id,
                r.id.description(),
                r.coverage_pct,
                r.efficiency_pct,
                r.patterns,
                r.seconds
            );
            let report = r.result.report();
            println!("{report}");
            let undetected = r
                .result
                .faults
                .iter()
                .filter(|(_, s)| !s.is_detected())
                .count();
            let aborted = r
                .result
                .faults
                .iter()
                .filter(|(_, s)| matches!(s, FaultStatus::Aborted))
                .count();
            println!("undetected {undetected}, aborted {aborted}");
        }
        None => {
            let table = run_table1(&options);
            println!("{table}");
        }
    }
}
