//! Scalar good/faulty dual simulation — PODEM's value engine.
//!
//! Unlike the packed PPSFP simulator (which only reports detection),
//! PODEM needs to *inspect* intermediate values: the fault-site value
//! per frame, unjustified objectives, X nodes and difference nodes.
//! This simulator keeps full good and faulty value arrays per frame for
//! a single candidate pattern.

use occ_fault::{Fault, FaultModel, FaultSite, Polarity};
use occ_fsim::{CaptureModel, FrameSpec, Pattern};
use occ_netlist::{CellId, CellKind, Logic};

/// Scalar dual-machine simulation state for one pattern and one fault.
#[derive(Debug)]
pub struct DualSim<'m, 'a> {
    model: &'m CaptureModel<'a>,
    /// Good node values per frame (frame k at index k-1).
    pub good: Vec<Vec<Logic>>,
    /// Faulty node values per frame.
    pub faulty: Vec<Vec<Logic>>,
    /// Good flop states (index 0 = load).
    pub good_state: Vec<Vec<Logic>>,
    /// Faulty flop states.
    pub faulty_state: Vec<Vec<Logic>>,
}

impl<'m, 'a> DualSim<'m, 'a> {
    /// Creates an empty simulator for the model.
    pub fn new(model: &'m CaptureModel<'a>) -> Self {
        DualSim {
            model,
            good: Vec::new(),
            faulty: Vec::new(),
            good_state: Vec::new(),
            faulty_state: Vec::new(),
        }
    }

    /// The bound capture model.
    pub fn model(&self) -> &'m CaptureModel<'a> {
        self.model
    }

    /// Runs both machines for `pattern` under `spec` with `fault`
    /// injected in its active frames.
    pub fn simulate(&mut self, spec: &FrameSpec, pattern: &Pattern, fault: Fault) {
        let frames = spec.frames();
        self.good.clear();
        self.faulty.clear();
        self.good_state.clear();
        self.faulty_state.clear();

        let n_flops = self.model.flops().len();
        let mut gs0 = vec![Logic::X; n_flops];
        for (si, &fi) in self.model.scan_flops().iter().enumerate() {
            gs0[fi as usize] = pattern.scan_load[si];
        }
        self.good_state.push(gs0.clone());
        self.faulty_state.push(gs0);

        for k in 1..=frames {
            let active = match fault.model() {
                FaultModel::StuckAt => true,
                FaultModel::Transition => k == frames,
            };
            let gvals = self.eval_frame(spec, pattern, k, &self.good_state[k - 1].clone(), None);
            let fvals = self.eval_frame(
                spec,
                pattern,
                k,
                &self.faulty_state[k - 1].clone(),
                active.then_some(fault),
            );
            let gnext = self.next_state(spec, k, &gvals, &self.good_state[k - 1].clone());
            let fnext = self.next_state(spec, k, &fvals, &self.faulty_state[k - 1].clone());
            self.good.push(gvals);
            self.faulty.push(fvals);
            self.good_state.push(gnext);
            self.faulty_state.push(fnext);
        }
    }

    fn eval_frame(
        &self,
        spec: &FrameSpec,
        pattern: &Pattern,
        frame: usize,
        state: &[Logic],
        fault: Option<Fault>,
    ) -> Vec<Logic> {
        let nl = self.model.netlist();
        let mut vals = vec![Logic::X; nl.len()];
        for (id, cell) in nl.iter() {
            match cell.kind() {
                CellKind::Tie0 => vals[id.index()] = Logic::Zero,
                CellKind::Tie1 => vals[id.index()] = Logic::One,
                _ => {}
            }
        }
        for &(c, v) in self.model.forced() {
            vals[c.index()] = v;
        }
        for &c in self.model.masked() {
            vals[c.index()] = Logic::X;
        }
        let _ = spec;
        for (i, &pi) in self.model.free_pis().iter().enumerate() {
            vals[pi.index()] = pattern.pis_for_frame(frame)[i];
        }
        for (fi, info) in self.model.flops().iter().enumerate() {
            vals[info.cell.index()] = state[fi];
        }
        if let Some(f) = fault {
            if let FaultSite::Output(c) = f.site() {
                vals[c.index()] = polarity_logic(f.polarity());
            }
        }
        for &id in nl.levelization().order() {
            if let Some(f) = fault {
                if f.site() == FaultSite::Output(id) {
                    vals[id.index()] = polarity_logic(f.polarity());
                    continue;
                }
            }
            let cell = nl.cell(id);
            let mut ins: Vec<Logic> = cell.inputs().iter().map(|&s| vals[s.index()]).collect();
            if let Some(f) = fault {
                if let FaultSite::Input { cell: fc, pin } = f.site() {
                    if fc == id {
                        ins[pin as usize] = polarity_logic(f.polarity());
                    }
                }
            }
            vals[id.index()] = cell.kind().eval_comb(&ins).unwrap_or(Logic::X);
        }
        vals
    }

    fn next_state(
        &self,
        spec: &FrameSpec,
        frame: usize,
        vals: &[Logic],
        prev: &[Logic],
    ) -> Vec<Logic> {
        let nl = self.model.netlist();
        let cycle = &spec.cycles()[frame - 1];
        let mut next = prev.to_vec();
        for (fi, info) in self.model.flops().iter().enumerate() {
            if cycle.pulses_domain(info.domain) {
                let cell = nl.cell(info.cell);
                next[fi] = match cell.kind() {
                    CellKind::Sdff | CellKind::SdffRl => {
                        let d = vals[cell.inputs()[0].index()];
                        let se = vals[cell.inputs()[2].index()];
                        let si = vals[cell.inputs()[3].index()];
                        Logic::mux2(se, d, si)
                    }
                    _ => vals[cell.inputs()[0].index()].drive(),
                };
            }
            if let Some(rpin) = nl.cell(info.cell).reset() {
                let r = vals[rpin.index()].drive();
                let act = match nl.cell(info.cell).kind() {
                    CellKind::DffRh => r == Logic::One,
                    _ => r == Logic::Zero,
                };
                if act {
                    next[fi] = Logic::Zero;
                } else if !r.is_definite() && next[fi] != Logic::Zero {
                    next[fi] = Logic::X;
                }
            }
        }
        next
    }

    /// The good value of the fault site's driving node in 1-based
    /// `frame`.
    pub fn site_good(&self, fault: Fault, frame: usize) -> Logic {
        let node = self.site_node(fault.site());
        self.good[frame - 1][node.index()]
    }

    /// The node carrying the site value (driver for input-pin faults).
    pub fn site_node(&self, site: FaultSite) -> CellId {
        match site {
            FaultSite::Output(c) => c,
            FaultSite::Input { cell, pin } => {
                self.model.netlist().cell(cell).inputs()[pin as usize]
            }
        }
    }

    /// Whether the current pattern detects the fault (same criterion as
    /// the packed fault simulator: launch condition for transition
    /// faults, definite difference at an observed point).
    pub fn detected(&self, spec: &FrameSpec, fault: Fault) -> bool {
        let frames = spec.frames();
        if fault.model() == FaultModel::Transition {
            if frames < 2 {
                return false;
            }
            let node = self.site_node(fault.site());
            let before = self.good[frames - 2][node.index()];
            let after = self.good[frames - 1][node.index()];
            let ok = match fault.polarity() {
                Polarity::P0 => before == Logic::Zero && after == Logic::One,
                Polarity::P1 => before == Logic::One && after == Logic::Zero,
            };
            if !ok {
                return false;
            }
        }
        for &k in spec.po_observe_frames() {
            for &po in self.model.primary_outputs() {
                let g = self.good[k - 1][po.index()];
                let f = self.faulty[k - 1][po.index()];
                if g.is_definite() && f.is_definite() && g != f {
                    return true;
                }
            }
        }
        for &fi in self.model.scan_flops() {
            let g = self.good_state[frames][fi as usize];
            let mut f = self.faulty_state[frames][fi as usize];
            if fault.model() == FaultModel::StuckAt {
                if let FaultSite::Output(c) = fault.site() {
                    if c == self.model.flops()[fi as usize].cell {
                        f = polarity_logic(fault.polarity());
                    }
                }
            }
            if g.is_definite() && f.is_definite() && g != f {
                return true;
            }
        }
        false
    }
}

pub(crate) fn polarity_logic(p: Polarity) -> Logic {
    match p {
        Polarity::P0 => Logic::Zero,
        Polarity::P1 => Logic::One,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_fsim::{ClockBinding, CycleSpec, FaultSim};

    #[test]
    fn dual_sim_detection_matches_ppsfp() {
        // Small circuit, all faults, fixed patterns: the scalar dual
        // simulator and the packed engine must agree.
        let mut b = occ_netlist::NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let d = b.input("d");
        let f0 = b.sdff(d, clk, se, si);
        let inv = b.not(f0);
        let g = b.and2(inv, d);
        let f1 = b.sdff(g, clk, se, f0);
        b.output("q", f1);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        binding.constrain(se, Logic::Zero);
        binding.mask(si);
        let model = CaptureModel::new(&nl, binding).unwrap();
        let spec = FrameSpec::new("loc", vec![CycleSpec::pulsing(&[0]); 2])
            .hold_pi(true)
            .observe_po(false);
        let uni = occ_fault::FaultUniverse::transition(&nl);

        let mut ds = DualSim::new(&model);
        let mut fsim = FaultSim::new(&model);
        for load0 in [Logic::Zero, Logic::One] {
            for dval in [Logic::Zero, Logic::One] {
                let mut p = Pattern::empty(&model, &spec, 0);
                p.scan_load = vec![load0, Logic::Zero];
                p.pis[0] = vec![dval];
                let good = occ_fsim::simulate_good(&model, &spec, &[p.clone()]);
                for &fault in uni.faults() {
                    ds.simulate(&spec, &p, fault);
                    let scalar = ds.detected(&spec, fault);
                    let packed = fsim.detect(&spec, &good, fault) & 1 == 1;
                    assert_eq!(scalar, packed, "fault {fault} load {load0} d {dval}");
                }
            }
        }
    }
}
