//! A std-only JSON value type: recursive-descent parser, canonical
//! writer, path accessors.
//!
//! The workspace builds fully offline (no serde), and the protocol is
//! deliberately small — newline-delimited objects of strings, numbers,
//! booleans and flat nesting — so a ~200-line parser covers it.
//! Objects preserve **key order** (a `Vec` of pairs, not a map): the
//! golden wire-format tests pin the exact serialization of
//! [`FlowReport`](occ_flow::FlowReport), and byte-identity comparisons
//! of re-serialized values only work when parsing is order-preserving.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integer kinds).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a short reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns the byte offset and reason of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage after document"));
        }
        Ok(v)
    }

    /// Member lookup on an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one
    /// exactly (no fraction, no loss).
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// A deep copy with every member named in `keys` removed, at any
    /// depth. The canonicalizer for cache-correctness tests: two
    /// [`FlowReport`](occ_flow::FlowReport)s are *semantically*
    /// identical when their JSON matches after stripping the volatile
    /// wall-clock members (`stages`, `total_seconds`).
    #[must_use]
    pub fn without_keys(&self, keys: &[&str]) -> Json {
        match self {
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .filter(|(k, _)| !keys.contains(&k.as_str()))
                    .map(|(k, v)| (k.clone(), v.without_keys(keys)))
                    .collect(),
            ),
            Json::Arr(items) => Json::Arr(items.iter().map(|v| v.without_keys(keys)).collect()),
            other => other.clone(),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Integral values print without a fraction (`3`, not `3.0`) so
/// round-tripping a report keeps `"seed":7` byte-stable; everything
/// else uses the shortest `{}` form.
#[allow(clippy::cast_possible_truncation)]
fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if n.is_finite() && n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// JSON string escaping, matching `occ_flow::report`'s writer (the two
/// serializers must agree for embedded-report splicing to round-trip).
pub fn write_escaped(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'t> {
    bytes: &'t [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            reason,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, reason: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after member name")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The slice boundaries sit on ASCII bytes, so this is
            // always a valid UTF-8 cut of the input str.
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
                    at: start,
                    reason: "invalid UTF-8 in string",
                })?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs are not produced by any
                            // writer in this workspace; lone
                            // surrogates map to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII span");
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            at: start,
            reason: "invalid number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let src = r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":-2.5,"e":""}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.to_string(), src);
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("b").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64),
            Some(-2.5)
        );
    }

    #[test]
    fn preserves_key_order() {
        let v = Json::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn without_keys_strips_at_depth() {
        let v = Json::parse(r#"{"keep":1,"drop":2,"nest":{"drop":3,"keep":4}}"#).unwrap();
        let stripped = v.without_keys(&["drop"]);
        assert_eq!(stripped.to_string(), r#"{"keep":1,"nest":{"keep":4}}"#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }
}
