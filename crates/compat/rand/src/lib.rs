//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds with no network access, so the subset of the
//! rand 0.8 API the codebase uses is reimplemented here on top of a
//! deterministic xoshiro256** generator seeded via SplitMix64. The
//! stream differs from the real `StdRng` (ChaCha12), which is fine:
//! every caller in this workspace seeds explicitly and only relies on
//! run-to-run determinism, never on a particular published stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is provided
/// because that is the only one the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a half-open or inclusive integer range.
    /// Panics on an empty range, like the real crate.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly. Implemented for `Range` and
/// `RangeInclusive` over the primitive integer types.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(reduce(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(reduce(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Debiased uniform draw in `[0, span)` (Lemire's multiply-shift with
/// rejection), so the stream is independent of modulo artifacts.
fn reduce<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span || lo >= (u64::MAX - span + 1) % span {
            return (m >> 64) as u64;
        }
    }
}

/// xoshiro256** by Blackman & Vigna: tiny, fast, and far better than a
/// single LCG for the structured circuit generation in `occ-soc`.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    fn from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the canonical way to seed xoshiro.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    //! Named generators mirroring `rand::rngs`.

    /// Drop-in for `rand::rngs::StdRng`: deterministic, explicitly
    /// seeded, same API — different (but stable) stream.
    #[derive(Clone, Debug)]
    pub struct StdRng(super::Xoshiro256StarStar);

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(super::Xoshiro256StarStar::from_u64(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.gen_range(0usize..97), b.gen_range(0usize..97));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads={heads}");
    }
}
