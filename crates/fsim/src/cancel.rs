//! Cooperative cancellation for long-running kernels.
//!
//! A [`CancelToken`] is a cheap, cloneable handle (an `Arc` around two
//! atomics) that batch loops poll at work-item boundaries: the
//! fault-sim grading loop checks it every few dozen faults, the ATPG
//! flow checks it per PODEM target, the `TestFlow` pipeline checks it
//! between stages. Nothing is ever interrupted mid-evaluation — a
//! cancelled engine finishes the fault it is on and returns early, so
//! no scratch state is ever poisoned and the engine remains usable for
//! the next (uncancelled) batch.
//!
//! Two trip conditions, folded into one token:
//!
//! * **explicit cancellation** — [`CancelToken::cancel`], used by a
//!   draining server to abandon in-flight jobs past the drain deadline;
//! * **a deadline** — [`CancelToken::with_deadline`], the per-job time
//!   budget. The deadline is evaluated lazily on [`CancelToken::cause`]
//!   / [`CancelToken::is_cancelled`] and latched into the atomic once
//!   observed, so steady-state polling after expiry is one relaxed
//!   load.
//!
//! Tokens can be **linked**: a child created with
//! [`CancelToken::child`] trips when either its own condition or any
//! ancestor's fires (own cause wins when both apply). This is how one
//! server-wide drain token fans out to every in-flight job while each
//! job keeps its own deadline.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a token tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called (or an ancestor's was).
    Cancelled,
    /// The token's (or an ancestor's) deadline passed.
    DeadlineExceeded,
}

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

#[derive(Debug)]
struct Inner {
    state: AtomicU8,
    deadline: Option<Instant>,
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn cause(&self) -> Option<CancelCause> {
        match self.state.load(Ordering::Acquire) {
            CANCELLED => return Some(CancelCause::Cancelled),
            DEADLINE => return Some(CancelCause::DeadlineExceeded),
            _ => {}
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                // Latch so later polls skip the clock read. A racing
                // explicit cancel() may win; either verdict is valid.
                let _ = self.state.compare_exchange(
                    LIVE,
                    DEADLINE,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                return match self.state.load(Ordering::Acquire) {
                    CANCELLED => Some(CancelCause::Cancelled),
                    _ => Some(CancelCause::DeadlineExceeded),
                };
            }
        }
        self.parent.as_ref().and_then(|p| p.cause())
    }
}

/// A cloneable cooperative-cancellation handle; see the module docs.
///
/// The default token ([`CancelToken::never`]) can never trip, so
/// threading tokens through a pipeline costs nothing on the untouched
/// paths.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::never()
    }
}

impl CancelToken {
    fn from_parts(deadline: Option<Instant>, parent: Option<Arc<Inner>>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline,
                parent,
            }),
        }
    }

    /// A token that only trips on an explicit [`CancelToken::cancel`].
    #[must_use]
    pub fn new() -> Self {
        Self::from_parts(None, None)
    }

    /// A token that can never trip (the default for every engine).
    #[must_use]
    pub fn never() -> Self {
        Self::from_parts(None, None)
    }

    /// A token that trips with [`CancelCause::DeadlineExceeded`] once
    /// `budget` has elapsed (measured from now), or earlier on an
    /// explicit [`CancelToken::cancel`].
    #[must_use]
    pub fn with_deadline(budget: Duration) -> Self {
        Self::from_parts(Instant::now().checked_add(budget), None)
    }

    /// A child token that additionally trips whenever `self` (or any of
    /// `self`'s ancestors) trips. `deadline` is the child's own budget;
    /// pass `None` for a pure link.
    #[must_use]
    pub fn child(&self, deadline: Option<Duration>) -> Self {
        Self::from_parts(
            deadline.and_then(|d| Instant::now().checked_add(d)),
            Some(Arc::clone(&self.inner)),
        )
    }

    /// Trips the token with [`CancelCause::Cancelled`]. Idempotent; a
    /// token that already tripped on its deadline keeps that cause.
    pub fn cancel(&self) {
        let _ =
            self.inner
                .state
                .compare_exchange(LIVE, CANCELLED, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Whether the token has tripped (either condition, any ancestor).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cause().is_some()
    }

    /// The trip cause, or `None` while the token is live. The first
    /// call past a deadline latches [`CancelCause::DeadlineExceeded`].
    #[must_use]
    pub fn cause(&self) -> Option<CancelCause> {
        self.inner.cause()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_stays_live() {
        let t = CancelToken::never();
        assert_eq!(t.cause(), None);
        assert!(!t.is_cancelled());
    }

    #[test]
    fn cancel_trips_and_clones_observe_it() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert_eq!(c.cause(), Some(CancelCause::Cancelled));
        // Idempotent, cause stable.
        t.cancel();
        assert_eq!(t.cause(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn deadline_trips_with_its_own_cause() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(t.cause(), Some(CancelCause::DeadlineExceeded));
        // Cancel after expiry does not rewrite the cause.
        t.cancel();
        assert_eq!(t.cause(), Some(CancelCause::DeadlineExceeded));
    }

    #[test]
    fn child_observes_parent_and_keeps_own_cause_priority() {
        let parent = CancelToken::new();
        let child = parent.child(None);
        assert!(!child.is_cancelled());
        parent.cancel();
        assert_eq!(child.cause(), Some(CancelCause::Cancelled));

        // A child's own deadline fires independently of a live parent.
        let parent = CancelToken::new();
        let child = parent.child(Some(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(child.cause(), Some(CancelCause::DeadlineExceeded));
        assert!(!parent.is_cancelled());
    }

    #[test]
    fn far_deadline_stays_live() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
    }
}
