//! Value-change-dump (VCD) export of recorded traces.

use crate::Trace;
use occ_netlist::Logic;
use std::fmt::Write as _;

impl Trace {
    /// Renders the trace as an IEEE-1364 VCD document (1 ps timescale)
    /// that standard waveform viewers (GTKWave etc.) can open.
    ///
    /// # Examples
    ///
    /// ```
    /// use occ_netlist::{NetlistBuilder, Logic};
    /// use occ_sim::{EventSim, DelayModel, Waveform};
    ///
    /// # fn main() -> Result<(), occ_netlist::BuildError> {
    /// let mut b = NetlistBuilder::new("t");
    /// let a = b.input("a");
    /// let y = b.not(a);
    /// b.output("y", y);
    /// let nl = b.finish()?;
    /// let mut sim = EventSim::new(&nl, DelayModel::default());
    /// sim.watch(a);
    /// sim.watch(y);
    /// sim.drive(a, Waveform::steps(&[(0, Logic::Zero), (50, Logic::One)]));
    /// sim.run_until(100);
    /// let vcd = sim.trace().to_vcd("t");
    /// assert!(vcd.contains("$timescale 1ps $end"));
    /// assert!(vcd.contains("$var wire 1"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_vcd(&self, module: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date occ-sim $end");
        let _ = writeln!(out, "$version occ-sim 0.1 $end");
        let _ = writeln!(out, "$timescale 1ps $end");
        let _ = writeln!(out, "$scope module {module} $end");

        let codes: Vec<(occ_netlist::CellId, String, String)> = self
            .signals()
            .enumerate()
            .map(|(i, (id, name))| (id, vcd_code(i), name.to_owned()))
            .collect();
        for (_, code, name) in &codes {
            let clean: String = name
                .chars()
                .map(|c| if c.is_whitespace() { '_' } else { c })
                .collect();
            let _ = writeln!(out, "$var wire 1 {code} {clean} $end");
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");

        // Gather all changes across signals into one timeline.
        let mut timeline: Vec<(u64, &str, Logic)> = Vec::new();
        for (id, code, _) in &codes {
            let initial = self.value_at(*id, 0);
            timeline.push((0, code, initial));
            for e in self.edges(*id) {
                if e.time > 0 {
                    timeline.push((e.time, code, e.to));
                }
            }
        }
        timeline.sort_by_key(|&(t, _, _)| t);

        let mut last_time = None;
        for (t, code, v) in timeline {
            if last_time != Some(t) {
                let _ = writeln!(out, "#{t}");
                last_time = Some(t);
            }
            let _ = writeln!(out, "{}{}", vcd_value(v), code);
        }
        let _ = writeln!(out, "#{}", self.end_time());
        out
    }
}

fn vcd_value(v: Logic) -> char {
    match v {
        Logic::Zero => '0',
        Logic::One => '1',
        Logic::X => 'x',
        Logic::Z => 'z',
    }
}

/// Short printable identifier codes: `!`, `"`, … (VCD convention).
fn vcd_code(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push(char::from(33 + (i % 94) as u8));
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_netlist::CellId;

    #[test]
    fn codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = vcd_code(i);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn vcd_contains_ordered_timestamps() {
        let id = CellId::from_index(0);
        let mut t = Trace::new();
        t.add_signal(id, "sig".into(), Logic::Zero);
        t.record(id, 10, Logic::Zero, Logic::One);
        t.record(id, 20, Logic::One, Logic::X);
        t.set_end_time(30);
        let vcd = t.to_vcd("m");
        let p0 = vcd.find("#0").unwrap();
        let p10 = vcd.find("#10").unwrap();
        let p20 = vcd.find("#20").unwrap();
        assert!(p0 < p10 && p10 < p20);
        assert!(vcd.contains("x!"));
    }
}
