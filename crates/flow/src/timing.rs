//! The flow's delay-test-quality stage.
//!
//! With [`TestFlow::timing`](crate::TestFlow::timing) configured, the
//! pipeline gains one analysis pass after ATPG:
//!
//! 1. the [`DelayModel`] is compiled into a flat per-cell table
//!    ([`DelayModel::compile`]) shared by every timing consumer;
//! 2. a compiled [`Sta`] derives per-cell arrival times plus, per
//!    clock domain, the longest *functional* path through every fault
//!    site (the failure threshold of a delay defect there);
//! 3. the final pattern set is re-graded through the serial PPSFP
//!    kernel with a timing view attached
//!    ([`FaultSim::attach_timing`](occ_fsim::FaultSim::attach_timing)):
//!    each detection records its longest sensitized path, and the
//!    procedure's capture window
//!    ([`occ_core::capture_window_ps`]) turns that into the smallest
//!    delay defect the detection screens;
//! 4. [`QualityReport::compute`] aggregates the per-fault slacks into
//!    SDQL, weighted coverage and the slack histogram.
//!
//! The pass is strictly read-only over the ATPG result: masks, fault
//! statuses and pattern sets are untouched, and a flow without
//! `.timing(..)` produces byte-identical reports to one built before
//! this stage existed.

use occ_core::{capture_window_ps, ClockingMode};
use occ_fault::Fault;
use occ_fsim::{simulate_good, CaptureModel, FaultSim, FrameSpec, Pattern, SimTiming};
use occ_sim::{DelayModel, Time};
use occ_timing::{CaptureTargets, FaultSlack, ProcWindow, QualityOptions, QualityReport, Sta};
use std::sync::Arc;

/// Functional period assumed for domains the flow cannot derive one
/// for (custom-netlist sources without explicit periods): the paper's
/// fast 150 MHz domain.
pub const DEFAULT_DOMAIN_PERIOD_PS: Time = 6_666;

/// Configuration of the delay-test-quality stage.
#[derive(Debug, Clone)]
pub struct TimingConfig {
    /// Per-cell propagation delays (compiled once per run).
    pub delays: DelayModel,
    /// The slow tester period external clocking modes capture under.
    /// Default: 40 ns (the paper's 25 MHz reference clock).
    pub ate_period_ps: Time,
    /// Explicit per-domain functional periods in ps. Empty (the
    /// default) derives them from the SOC's domain configuration, or
    /// [`DEFAULT_DOMAIN_PERIOD_PS`] for custom-netlist sources; a
    /// vector shorter than the domain count is padded with
    /// [`DEFAULT_DOMAIN_PERIOD_PS`] so functional thresholds and
    /// capture windows always agree.
    pub domain_periods_ps: Vec<Time>,
    /// Defect-size distribution and histogram knobs.
    pub quality: QualityOptions,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            delays: DelayModel::default(),
            ate_period_ps: 40_000,
            domain_periods_ps: Vec::new(),
            quality: QualityOptions::default(),
        }
    }
}

impl From<DelayModel> for TimingConfig {
    /// The `.timing(DelayModel)` shorthand: everything else defaulted.
    fn from(delays: DelayModel) -> Self {
        TimingConfig {
            delays,
            ..TimingConfig::default()
        }
    }
}

/// The node whose good value defines a fault site's value (the driver
/// for input-pin faults), as a dense cell index.
fn site_index(model: &CaptureModel<'_>, fault: Fault) -> usize {
    match fault.site() {
        occ_fault::FaultSite::Output(c) => c.index(),
        occ_fault::FaultSite::Input { cell, pin } => {
            model.netlist().cell(cell).inputs()[pin as usize].index()
        }
    }
}

/// Runs the quality pass over a finished ATPG result. A precompiled
/// delay table (from a [`FlowArtifacts`](crate::FlowArtifacts) cache)
/// skips the [`DelayModel::compile`] pass; `cfg.delays` is then only
/// identity metadata.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_quality(
    model: &CaptureModel<'_>,
    procedures: &[FrameSpec],
    mode: ClockingMode,
    result: &occ_atpg::AtpgResult,
    cfg: &TimingConfig,
    domain_periods: &[Time],
    precompiled: Option<&occ_sim::CompiledDelays>,
) -> QualityReport {
    let graph = model.graph();
    let n_domains = model.domain_count();
    let compiled_here;
    let delays = match precompiled {
        Some(table) => table.as_slice(),
        None => {
            let _compile_span = occ_obs::span("timing.compile");
            compiled_here = cfg.delays.compile(model.netlist());
            compiled_here.as_slice()
        }
    };

    let windows: Vec<ProcWindow> = procedures
        .iter()
        .map(|spec| ProcWindow {
            name: spec.name().to_owned(),
            window_ps: capture_window_ps(mode, spec, domain_periods, cfg.ate_period_ps),
            at_speed: mode.is_at_speed(),
        })
        .collect();

    let faults = result.faults.faults();
    let mut slacks = vec![FaultSlack::default(); faults.len()];

    // Functional failure thresholds: per domain, the margin of the
    // longest functional path through each fault site under that
    // domain's period; a defect fails the device as soon as it exceeds
    // the tightest margin of any observing domain.
    let sites: Vec<usize> = faults.iter().map(|&f| site_index(model, f)).collect();
    let mut sta = Sta::new(graph.cells());
    let mut sta_span = occ_obs::span("timing.sta");
    sta_span.attr_u64("domains", n_domains as u64);
    for d in 0..n_domains {
        sta.compute(graph, delays, &CaptureTargets::domain(d, n_domains));
        let period = domain_periods
            .get(d)
            .copied()
            .unwrap_or(DEFAULT_DOMAIN_PERIOD_PS);
        for (slack, &site) in slacks.iter_mut().zip(&sites) {
            if let Some(path) = sta.path_through(site) {
                let margin = period.saturating_sub(path);
                slack.func_slack_ps = Some(slack.func_slack_ps.map_or(margin, |p| p.min(margin)));
            }
        }
    }

    // Observed test slacks: re-grade the final pattern set with the
    // timed kernel and keep, per detected fault, the smallest
    // window − longest-sensitized-path margin over all detections.
    // The kernel view only consumes arrivals, which are target-
    // independent — the forward pass alone suffices.
    sta.compute_arrivals(graph, delays);
    drop(sta_span);
    let mut regrade_span = occ_obs::span("timing.regrade");
    regrade_span.attr_u64("patterns", result.patterns.patterns().len() as u64);
    let view = Arc::new(SimTiming::new(delays.to_vec(), sta.arrivals().to_vec()));
    let mut fsim = FaultSim::new(model);
    fsim.attach_timing(view);
    let patterns = result.patterns.patterns();
    for (pi, spec) in procedures.iter().enumerate() {
        let idxs: Vec<usize> = (0..patterns.len())
            .filter(|&i| patterns[i].proc_index == pi)
            .collect();
        if idxs.is_empty() {
            continue;
        }
        let window = windows[pi].window_ps;
        for chunk in idxs.chunks(64) {
            let pats: Vec<Pattern> = chunk.iter().map(|&i| patterns[i].clone()).collect();
            let good = simulate_good(model, spec, &pats);
            for (slack, &fault) in slacks.iter_mut().zip(faults) {
                if !result.faults.status(fault).is_detected() {
                    continue;
                }
                if fsim.detect(spec, &good, fault) != 0 {
                    let margin = window.saturating_sub(fsim.last_path_ps());
                    slack.test_slack_ps =
                        Some(slack.test_slack_ps.map_or(margin, |p| p.min(margin)));
                }
            }
        }
    }

    drop(regrade_span);
    QualityReport::compute(&slacks, windows, &cfg.quality)
}
