//! The retained naive STA — correctness oracle and perf baseline.
//!
//! [`reference_arrivals`] computes the same per-cell settle times as
//! the compiled [`Sta`](crate::Sta) forward pass, but the way a first
//! implementation would: fresh allocations per call, per-cell
//! [`Cell`](occ_netlist::Cell) lookups and the `HashMap`-probing
//! [`DelayModel::delay`] path instead of a compiled table. `timing_bench`
//! times the two against each other (the ratio cancels machine speed)
//! and cross-checks the values; `tests/timing_equivalence.rs` pins both
//! against the event-driven simulator.

use occ_netlist::{CellKind, Netlist};
use occ_sim::{DelayModel, Time};

/// Naive per-cell arrival times under `delays`, matching
/// [`Sta::arrivals`](crate::Sta::arrivals) exactly.
///
/// Launch model (identical to the compiled engine): stateful cells
/// settle one clock-to-out after the launch edge, sources and ties are
/// stable at time 0, combinational cells settle at the latest fanin
/// arrival plus their own delay.
pub fn reference_arrivals(netlist: &Netlist, delays: &DelayModel) -> Vec<Time> {
    let mut arrival: Vec<Time> = netlist
        .iter()
        .map(|(id, cell)| match cell.kind() {
            CellKind::Input | CellKind::Tie0 | CellKind::Tie1 | CellKind::TieX => 0,
            k if k.is_combinational() => 0, // filled by the ordered pass
            k => delays.delay(id, k),       // stateful: clock-to-out
        })
        .collect();
    for &id in netlist.levelization().order() {
        let cell = netlist.cell(id);
        let t = cell
            .inputs()
            .iter()
            .map(|&src| arrival[src.index()])
            .max()
            .unwrap_or(0);
        arrival[id.index()] = t + delays.delay(id, cell.kind());
    }
    arrival
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_netlist::NetlistBuilder;

    #[test]
    fn reference_matches_hand_computation() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let d = b.input("d");
        let ff = b.dff(d, clk);
        let inv = b.not(ff);
        let g = b.and2(inv, d);
        b.output("y", g);
        let nl = b.finish().unwrap();
        let mut dm = DelayModel::default();
        dm.set_cell(inv, 7);
        let a = reference_arrivals(&nl, &dm);
        assert_eq!(a[clk.index()], 0);
        assert_eq!(a[ff.index()], 30);
        assert_eq!(a[inv.index()], 37);
        assert_eq!(a[g.index()], 47);
    }
}
