//! `L007` — structural untestability: faults proven undetectable from
//! the compiled observability cones and SCOAP controllability costs,
//! **before** any search runs.
//!
//! The claim must be sound — a statically `Untestable` fault may never
//! be detected by any engine, and may never contradict a *completed*
//! PODEM search. Two independent proofs are used, each conservative:
//!
//! * **Unobservable**: the fault's effect cell is outside the
//!   scan+PO observability cone of the compiled [`SimGraph`]
//!   (`graph.observable(effect, true)`). That cone is the superset of
//!   every per-procedure observation set, and the PPSFP kernels prune
//!   with exactly the same cone (pinned by
//!   `tests/kernel_equivalence.rs`), so no engine can ever report a
//!   detection.
//! * **Uncontrollable**: the SCOAP cost of the activation value at the
//!   fault site saturates at [`INF`]. `INF` only arises from sources
//!   that genuinely cannot produce the value under capture conditions
//!   — masked cells, constrained-to-the-other-value ports, `TieX`
//!   drivers, and latch/CGC/RAM kinds, which all evaluate to constant
//!   `X` in every simulation engine. A node that can never definitely
//!   carry the activation value can never launch a definite fault
//!   effect.
//!
//! [`SimGraph`]: occ_fsim::SimGraph

use crate::{Diagnostic, RuleId};
use occ_atpg::{Controllability, INF};
use occ_fault::{Fault, FaultModel, FaultSite, FaultUniverse};
use occ_fsim::CaptureModel;

/// Runs the untestability pass: appends one `L007` diagnostic per
/// proven fault and collects the faults themselves (the ATPG
/// pre-classification input). Returns the number of faults examined.
pub(crate) fn run(
    model: &CaptureModel<'_>,
    universe: &FaultUniverse,
    diags: &mut Vec<Diagnostic>,
    untestable: &mut Vec<Fault>,
) -> usize {
    let nl = model.netlist();
    let graph = model.graph();
    let ctrl = Controllability::compute(model);
    for &fault in universe.faults() {
        let site = fault.site();
        // The net the fault sits on: the driver of an input pin, or the
        // cell's own output.
        let node = match site {
            FaultSite::Output(c) => c,
            FaultSite::Input { cell, pin } => nl.cell(cell).inputs()[pin as usize],
        };
        let unobservable = !graph.observable(site.effect_cell(), true);
        let uncontrollable = match fault.model() {
            // Stuck-at-v is activated by driving the node to !v.
            FaultModel::StuckAt => ctrl.cost(node, !fault.polarity().to_bool()) >= INF,
            // A transition fault needs both the initial and the final
            // value (launch edge) to be producible.
            FaultModel::Transition => ctrl.cost(node, false) >= INF || ctrl.cost(node, true) >= INF,
        };
        if !(unobservable || uncontrollable) {
            continue;
        }
        let why = match (unobservable, uncontrollable) {
            (true, true) => "outside every observability cone and activation value unproducible",
            (true, false) => "outside every observability cone",
            (false, true) => "activation value unproducible (SCOAP cost saturates)",
            (false, false) => unreachable!(),
        };
        diags.push(Diagnostic::new(
            RuleId::Untestable,
            Some(site.effect_cell()),
            format!("fault {fault} is structurally untestable: {why}"),
        ));
        untestable.push(fault);
    }
    universe.faults().len()
}
