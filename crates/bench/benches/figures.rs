//! Criterion benches for the figure reproductions: device assembly
//! (Fig 1), full-device protocol simulation (Fig 2), CPF generation
//! (Fig 3) and CPF waveform simulation (Fig 4).

use criterion::{criterion_group, criterion_main, Criterion};
use occ_bench::{fig1_report, fig2_waveforms, fig3_report, fig4_waveforms};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig1_build_device", |b| {
        b.iter(|| {
            let (text, _, device) = fig1_report(7, 40);
            criterion::black_box((text.len(), device.netlist().len()))
        });
    });

    group.bench_function("fig2_protocol_sim", |b| {
        b.iter(|| {
            let fig = fig2_waveforms(7);
            assert_eq!(fig.pulses_per_domain, vec![2, 2]);
            criterion::black_box(fig.ascii.len())
        });
    });

    group.bench_function("fig3_cpf_build", |b| {
        b.iter(|| {
            let (text, verilog, dot) = fig3_report();
            criterion::black_box(text.len() + verilog.len() + dot.len())
        });
    });

    group.bench_function("fig4_cpf_sim", |b| {
        b.iter(|| {
            let fig = fig4_waveforms(1);
            assert_eq!(fig.pulse_count, 2);
            criterion::black_box(fig.vcd.len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
