//! PODEM: path-oriented decision making over multi-frame capture
//! models — the retained **reference engine**.
//!
//! Decision variables are the scan-load bits and the free primary
//! inputs (one variable per frame unless the procedure holds PIs).
//! After every assignment the dual machine is re-simulated; objectives
//! are derived from the activation conditions and the D-frontier and
//! backtraced to an unassigned variable. Search is backtrack-limited:
//! exceeding the limit classifies the fault *aborted*, exhausting the
//! space proves it *untestable* under the procedure.
//!
//! This engine re-simulates both machines from scratch (through the
//! allocating [`DualSim`]) after every decision and hashes `CellId`s
//! through `HashMap`s in the backtrace hot loop. It survives verbatim
//! as the oracle and bench baseline for the compiled engine
//! ([`CompiledPodem`](crate::CompiledPodem)), which makes exactly the
//! same decisions over a zero-allocation incremental value engine.

use crate::dualsim::{polarity_logic, DualSim};
use crate::engine::{AtpgEngine, AtpgKernelStats};
use crate::scoap::{Controllability, INF};
use crate::Observability;
use occ_fault::{Fault, FaultModel, FaultSite};
use occ_fsim::{CaptureModel, FrameSpec, Pattern};
use occ_netlist::{CellId, CellKind, Logic};
use std::collections::HashMap;

/// Outcome of one PODEM run for one fault under one procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A (partially specified) pattern detecting the fault.
    Test(Box<Pattern>),
    /// The search space was exhausted: no test exists under this
    /// procedure.
    Untestable,
    /// The backtrack limit was hit before a conclusion.
    Aborted,
}

/// A decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Var {
    /// Scan-load bit (index into the model's scan order).
    Scan(usize),
    /// Free-PI bit: `(pi index, pattern frame index)`.
    Pi(usize, usize),
}

/// The reference PODEM engine bound to a capture model.
pub struct ReferencePodem<'m, 'a> {
    model: &'m CaptureModel<'a>,
    sim: DualSim<'m, 'a>,
    scan_index: HashMap<CellId, usize>,
    pi_index: HashMap<CellId, usize>,
    cc: Controllability,
    stats: AtpgKernelStats,
}

impl<'m, 'a> ReferencePodem<'m, 'a> {
    /// Creates an engine for the model.
    pub fn new(model: &'m CaptureModel<'a>) -> Self {
        let scan_index = model
            .scan_cells()
            .enumerate()
            .map(|(i, c)| (c, i))
            .collect();
        let pi_index = model
            .free_pis()
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i))
            .collect();
        ReferencePodem {
            sim: DualSim::new(model),
            cc: Controllability::compute(model),
            model,
            scan_index,
            pi_index,
            stats: AtpgKernelStats::default(),
        }
    }

    /// Attempts to generate a test for `fault` under `spec`.
    ///
    /// `obs` must be the observability cones of the same `spec`.
    pub fn run(
        &mut self,
        spec: &FrameSpec,
        obs: &Observability,
        fault: Fault,
        backtrack_limit: usize,
    ) -> PodemOutcome {
        if fault.model() == FaultModel::Transition && spec.frames() < 2 {
            return PodemOutcome::Untestable;
        }
        let mut pattern = Pattern::empty(self.model, spec, 0);
        let mut stack: Vec<(Var, bool, bool)> = Vec::new();
        let mut backtracks = 0usize;
        // Hard ceiling on iterations as a safety net.
        let max_iters = 200_000usize;

        for _ in 0..max_iters {
            self.stats.full_resims += 1;
            self.sim.simulate(spec, &pattern, fault);
            if self.sim.detected(spec, fault) {
                return PodemOutcome::Test(Box::new(pattern));
            }

            let step = if !self.effect_possible(spec, obs, fault) {
                None
            } else {
                self.find_assignment(spec, obs, fault)
            };

            match step {
                Some((var, val)) => {
                    debug_assert!(
                        !stack.iter().any(|&(v, _, _)| v == var),
                        "backtrace returned an assigned variable"
                    );
                    self.stats.decisions += 1;
                    self.assign(&mut pattern, var, Some(val));
                    stack.push((var, val, false));
                }
                None => {
                    // Backtrack: flip the deepest unflipped decision.
                    loop {
                        match stack.pop() {
                            Some((var, val, false)) => {
                                backtracks += 1;
                                if backtracks > backtrack_limit {
                                    return PodemOutcome::Aborted;
                                }
                                self.stats.backtracks += 1;
                                self.stats.decisions += 1;
                                self.assign(&mut pattern, var, Some(!val));
                                stack.push((var, !val, true));
                                break;
                            }
                            Some((var, _, true)) => {
                                self.assign(&mut pattern, var, None);
                            }
                            None => return PodemOutcome::Untestable,
                        }
                    }
                }
            }
        }
        PodemOutcome::Aborted
    }

    fn assign(&self, pattern: &mut Pattern, var: Var, val: Option<bool>) {
        let v = val.map_or(Logic::X, Logic::from_bool);
        match var {
            Var::Scan(i) => pattern.scan_load[i] = v,
            Var::Pi(i, f) => pattern.pis[f][i] = v,
        }
    }

    /// Cheap soundness check: can the fault effect still be activated
    /// and observed under the current (partial) assignment?
    fn effect_possible(&self, spec: &FrameSpec, obs: &Observability, fault: Fault) -> bool {
        let frames = spec.frames();
        let site = self.sim.site_node(fault.site());
        let v_fault = polarity_logic(fault.polarity());

        // Activation feasibility on good values.
        match fault.model() {
            FaultModel::Transition => {
                let before = self.sim.good[frames - 2][site.index()];
                let after = self.sim.good[frames - 1][site.index()];
                let init = v_fault; // STR: 0 before, 1 after.
                let fin = !v_fault;
                if before.is_definite() && before != init {
                    return false;
                }
                if after.is_definite() && after != fin {
                    return false;
                }
            }
            FaultModel::StuckAt => {
                // Some active frame must allow the opposite value.
                let scan_q_site = self.stuck_scan_q_flop(fault);
                let state_ok = scan_q_site.is_some_and(|fi| {
                    let s = self.sim.good_state[frames][fi];
                    !s.is_definite() || s != v_fault
                });
                let frame_ok = (1..=frames).any(|k| {
                    let g = self.sim.good[k - 1][site.index()];
                    !g.is_definite() || g != v_fault
                });
                if !frame_ok && !state_ok {
                    return false;
                }
            }
        }

        // Observation feasibility: dynamic X-path check. The fault
        // effect must be able to travel from the site through nodes
        // whose current composite value is unknown or already differing
        // to an observation point of the procedure.
        if self.stuck_scan_q_flop(fault).is_some() {
            return true; // observed directly at unload
        }
        self.xpath_to_observation(spec, obs, fault)
    }

    /// Forward reachability from the fault site over "carrier" nodes —
    /// nodes where the faulty value is unknown or differs from the good
    /// value — to an observation point (observed PO, or a scan flop
    /// whose final captured state can differ). Sound pruning: if no such
    /// path exists under the current assignment, no extension of the
    /// assignment can detect the fault.
    fn xpath_to_observation(&self, spec: &FrameSpec, obs: &Observability, fault: Fault) -> bool {
        let nl = self.model.netlist();
        let frames = spec.frames();
        let n = nl.len();
        let carrier = |id: CellId, k: usize| {
            let g = self.sim.good[k - 1][id.index()];
            let f = self.sim.faulty[k - 1][id.index()];
            !g.is_definite() || !f.is_definite() || g != f
        };
        let state_carrier = |fi: usize, k: usize| {
            let g = self.sim.good_state[k][fi];
            let f = self.sim.faulty_state[k][fi];
            !g.is_definite() || !f.is_definite() || g != f
        };

        let mut visited = vec![false; n * frames];
        let mut work: Vec<(CellId, usize)> = Vec::new();
        let active = |k: usize| match fault.model() {
            FaultModel::StuckAt => true,
            FaultModel::Transition => k == frames,
        };
        let seed_cell = fault.site().effect_cell();
        let site = self.sim.site_node(fault.site());
        for k in 1..=frames {
            if !active(k) {
                continue;
            }
            for &s in &[seed_cell, site] {
                if carrier(s, k) && !visited[s.index() * frames + (k - 1)] {
                    visited[s.index() * frames + (k - 1)] = true;
                    work.push((s, k));
                }
            }
        }

        while let Some((id, k)) = work.pop() {
            // Observation?
            if spec.po_observe_frames().contains(&k) && nl.cell(id).kind() == CellKind::Output {
                return true;
            }
            let _ = obs;
            for &f in nl.fanouts(id) {
                let kind = nl.cell(f).kind();
                if kind.is_flop() {
                    let Some(fi) = self.model.flop_index(f) else {
                        continue;
                    };
                    let info = self.model.flops()[fi];
                    if !spec.cycles()[k - 1].pulses_domain(info.domain) {
                        continue;
                    }
                    if !state_carrier(fi, k) {
                        continue;
                    }
                    // Captured: observable at unload if scan and the
                    // state survives (conservatively: reached at any
                    // frame; survival is handled by continuing the
                    // walk below).
                    if info.is_scan && k == frames {
                        return true;
                    }
                    if k < frames {
                        // The (possibly corrupt) state feeds frame k+1,
                        // and survives further holds.
                        let mut kk = k + 1;
                        loop {
                            if carrier(f, kk) && !visited[f.index() * frames + (kk - 1)] {
                                visited[f.index() * frames + (kk - 1)] = true;
                                work.push((f, kk));
                            }
                            // Holding flops keep the corrupt state alive
                            // to later frames.
                            if kk >= frames || spec.cycles()[kk - 1].pulses_domain(info.domain) {
                                break;
                            }
                            kk += 1;
                        }
                        // A scan flop holding its corrupt capture to the
                        // end is observed at unload.
                        if info.is_scan
                            && !(k + 1..=frames)
                                .any(|j| spec.cycles()[j - 1].pulses_domain(info.domain))
                            && state_carrier(fi, frames)
                        {
                            return true;
                        }
                    }
                } else if kind.is_combinational()
                    && carrier(f, k)
                    && !visited[f.index() * frames + (k - 1)]
                {
                    visited[f.index() * frames + (k - 1)] = true;
                    work.push((f, k));
                }
            }
        }
        false
    }

    /// For stuck faults on a scan flop's Q net: the flop's model index
    /// (they are observed directly during unload).
    fn stuck_scan_q_flop(&self, fault: Fault) -> Option<usize> {
        if fault.model() != FaultModel::StuckAt {
            return None;
        }
        let FaultSite::Output(c) = fault.site() else {
            return None;
        };
        let fi = self.model.flop_index(c)?;
        self.model.flops()[fi].is_scan.then_some(fi)
    }

    /// Derives objectives in priority order and backtraces each until
    /// one reaches an unassigned decision variable.
    fn find_assignment(
        &self,
        spec: &FrameSpec,
        obs: &Observability,
        fault: Fault,
    ) -> Option<(Var, bool)> {
        let frames = spec.frames();
        let site = self.sim.site_node(fault.site());
        let v_fault = polarity_logic(fault.polarity());

        // 1. Activation objectives: if unjustified, they are mandatory —
        // when they cannot be backtraced the branch is dead.
        match fault.model() {
            FaultModel::Transition => {
                let before = self.sim.good[frames - 2][site.index()];
                if !before.is_definite() {
                    return self.backtrace(spec, site, frames - 1, v_fault == Logic::One);
                }
                let after = self.sim.good[frames - 1][site.index()];
                if !after.is_definite() {
                    return self.backtrace(spec, site, frames, v_fault == Logic::Zero);
                }
            }
            FaultModel::StuckAt => {
                let want = v_fault == Logic::Zero; // opposite of stuck value
                                                   // A stuck Q on a scan flop is observed directly at
                                                   // unload: justify the flop's *final captured state* to
                                                   // the opposite value.
                if let Some(fi) = self.stuck_scan_q_flop(fault) {
                    let s = self.sim.good_state[frames][fi];
                    if !s.is_definite() {
                        if let Some(hit) = self.backtrace_state(spec, site, want) {
                            return Some(hit);
                        }
                    }
                }
                let mut best = None;
                for k in (1..=frames).rev() {
                    let g = self.sim.good[k - 1][site.index()];
                    if !g.is_definite() && obs.observable(k, fault.site().effect_cell()) {
                        if let Some(hit) = self.backtrace(spec, site, k, want) {
                            best = Some(hit);
                            break;
                        }
                    }
                }
                if best.is_some() {
                    return best;
                }
                // If the site is already activated somewhere (including
                // via the unload-observed state), fall through to
                // propagation; otherwise dead end.
                let state_activated = self.stuck_scan_q_flop(fault).is_some_and(|fi| {
                    let s = self.sim.good_state[frames][fi];
                    s.is_definite() && s != v_fault
                });
                let activated = state_activated
                    || (1..=frames).any(|k| {
                        let g = self.sim.good[k - 1][site.index()];
                        g.is_definite() && g != v_fault
                    });
                if !activated {
                    return None;
                }
            }
        }

        // 2. Propagation: every observable D-frontier gate, every X
        // side input, until a backtrace lands on a variable. For an
        // input-pin fault the consuming cell is itself a frontier gate
        // (the difference is created inside it and its inputs show no
        // definite diff), so it is treated as having a D input.
        let nl = self.model.netlist();
        let pin_site_cell = match fault.site() {
            FaultSite::Input { cell, .. } => Some(cell),
            FaultSite::Output(_) => None,
        };
        let active = |k: usize| match fault.model() {
            FaultModel::StuckAt => true,
            FaultModel::Transition => k == frames,
        };
        for k in 1..=frames {
            for &id in nl.levelization().order() {
                let g_out = self.sim.good[k - 1][id.index()];
                let f_out = self.sim.faulty[k - 1][id.index()];
                if g_out.is_definite() && f_out.is_definite() {
                    continue; // settled (either propagated or blocked)
                }
                if !obs.observable(k, id) {
                    continue;
                }
                let cell = nl.cell(id);
                let has_d = (pin_site_cell == Some(id) && active(k))
                    || cell.inputs().iter().any(|&i| {
                        let g = self.sim.good[k - 1][i.index()];
                        let f = self.sim.faulty[k - 1][i.index()];
                        (g.is_definite() && f.is_definite() && g != f)
                            || (g.is_definite() != f.is_definite())
                    });
                if !has_d {
                    continue;
                }
                for (node, want) in self.side_input_objectives(cell.kind(), id, k) {
                    if let Some(hit) = self.backtrace(spec, node, k, want) {
                        return Some(hit);
                    }
                }
            }
        }
        None
    }

    /// For a D-frontier gate, enumerates X side-inputs with the
    /// non-controlling values that would let the difference through.
    fn side_input_objectives(
        &self,
        kind: CellKind,
        id: CellId,
        frame: usize,
    ) -> Vec<(CellId, bool)> {
        let nl = self.model.netlist();
        let cell = nl.cell(id);
        let x_inputs = || -> Vec<CellId> {
            cell.inputs()
                .iter()
                .copied()
                .filter(|i| !self.sim.good[frame - 1][i.index()].is_definite())
                .collect()
        };
        match kind {
            CellKind::And | CellKind::Nand => x_inputs().into_iter().map(|n| (n, true)).collect(),
            CellKind::Or | CellKind::Nor => x_inputs().into_iter().map(|n| (n, false)).collect(),
            CellKind::Xor | CellKind::Xnor => x_inputs()
                .into_iter()
                .flat_map(|n| [(n, false), (n, true)])
                .collect(),
            CellKind::Mux2 => {
                // Any X pin can matter: the select (to steer toward a
                // differing leg) or either data leg — including the
                // *faulty*-selected one when the select itself carries
                // the fault. Offer all X pins, steering the select
                // toward a differing leg first.
                let sel = cell.inputs()[0];
                let d1 = cell.inputs()[2];
                let diff = |i: CellId| {
                    let g = self.sim.good[frame - 1][i.index()];
                    let f = self.sim.faulty[frame - 1][i.index()];
                    g.is_definite() && f.is_definite() && g != f
                };
                let mut out = Vec::new();
                for i in cell.inputs().iter().copied() {
                    if self.sim.good[frame - 1][i.index()].is_definite() {
                        continue;
                    }
                    if i == sel {
                        let first = diff(d1);
                        out.push((sel, first));
                        out.push((sel, !first));
                    } else {
                        out.push((i, true));
                        out.push((i, false));
                    }
                }
                out
            }
            _ => Vec::new(),
        }
    }

    /// Backtraces a flop's *post-procedure state* (what scan unload
    /// reads) to a decision variable: the sample pin at its last
    /// capture, or the scan-load bit if its domain never pulses.
    fn backtrace_state(&self, spec: &FrameSpec, ff: CellId, want: bool) -> Option<(Var, bool)> {
        let nl = self.model.netlist();
        let cell = nl.cell(ff);
        let domain = self
            .model
            .flop_index(ff)
            .map(|fi| self.model.flops()[fi].domain)?;
        let mut k = spec.frames() + 1;
        loop {
            if k == 1 {
                return self.scan_index.get(&ff).map(|&si| (Var::Scan(si), want));
            }
            if spec.cycles()[k - 2].pulses_domain(domain) {
                let next = match cell.kind() {
                    CellKind::Sdff | CellKind::SdffRl => {
                        let se = self.sim.good[k - 2][cell.inputs()[2].index()];
                        if se == Logic::One {
                            cell.inputs()[3]
                        } else {
                            cell.inputs()[0]
                        }
                    }
                    _ => cell.inputs()[0],
                };
                return self.backtrace(spec, next, k - 1, want);
            }
            k -= 1;
        }
    }

    /// Walks an objective back to an unassigned decision variable,
    /// exploring alternative X inputs when a path dead-ends on an
    /// uncontrollable source (non-scan state, masked or constrained
    /// cells). Failed subgoals are memoized so reconvergent fan-in does
    /// not blow up.
    fn backtrace(
        &self,
        spec: &FrameSpec,
        node: CellId,
        frame: usize,
        want: bool,
    ) -> Option<(Var, bool)> {
        let mut failed: std::collections::HashSet<(CellId, usize, bool)> =
            std::collections::HashSet::new();
        self.backtrace_rec(spec, node, frame, want, &mut failed, 0)
    }

    fn backtrace_rec(
        &self,
        spec: &FrameSpec,
        node: CellId,
        frame: usize,
        want: bool,
        failed: &mut std::collections::HashSet<(CellId, usize, bool)>,
        depth: usize,
    ) -> Option<(Var, bool)> {
        if depth > 4_096 || failed.contains(&(node, frame, want)) {
            return None;
        }
        // Only X-valued nodes can be justified; a definite node means
        // this particular path needs no (or permits no) new assignment.
        if self.sim.good[frame - 1][node.index()].is_definite() {
            return None;
        }
        // Statically uncontrollable goals cannot be backtraced.
        if self.cc.cost(node, want) >= INF {
            return None;
        }
        let nl = self.model.netlist();
        let cell = nl.cell(node);
        let result = (|| {
            // Stop at decision variables.
            if cell.kind() == CellKind::Input {
                if let Some(&pi) = self.pi_index.get(&node) {
                    let pframe = if spec.holds_pi() { 0 } else { frame - 1 };
                    return Some((Var::Pi(pi, pframe), want));
                }
                return None; // constrained/clock input
            }
            if cell.kind().is_flop() {
                // Value in `frame` is the state after cycle frame-1:
                // walk back over hold cycles to the defining capture.
                let mut k = frame;
                loop {
                    if k == 1 {
                        // Load state: scan bits are decision variables.
                        return self.scan_index.get(&node).map(|&si| (Var::Scan(si), want));
                    }
                    let domain = self
                        .model
                        .flop_index(node)
                        .map(|fi| self.model.flops()[fi].domain)?;
                    if spec.cycles()[k - 2].pulses_domain(domain) {
                        let next = match cell.kind() {
                            CellKind::Sdff | CellKind::SdffRl => {
                                let se = self.sim.good[k - 2][cell.inputs()[2].index()];
                                if se == Logic::One {
                                    cell.inputs()[3]
                                } else {
                                    cell.inputs()[0]
                                }
                            }
                            _ => cell.inputs()[0],
                        };
                        return self.backtrace_rec(spec, next, k - 1, want, failed, depth + 1);
                    }
                    k -= 1;
                }
            }
            let x_inputs: Vec<CellId> = cell
                .inputs()
                .iter()
                .copied()
                .filter(|i| !self.sim.good[frame - 1][i.index()].is_definite())
                .collect();
            match cell.kind() {
                CellKind::Buf | CellKind::Output => {
                    self.backtrace_rec(spec, cell.inputs()[0], frame, want, failed, depth + 1)
                }
                CellKind::Not => {
                    self.backtrace_rec(spec, cell.inputs()[0], frame, !want, failed, depth + 1)
                }
                CellKind::And | CellKind::Nand | CellKind::Or | CellKind::Nor => {
                    let inv = matches!(cell.kind(), CellKind::Nand | CellKind::Nor);
                    let and_like = matches!(cell.kind(), CellKind::And | CellKind::Nand);
                    let goal = want ^ inv;
                    // Controlling goal: any single X input suffices —
                    // take the cheapest first. Non-controlling goal:
                    // every X input must eventually be justified —
                    // start with the hardest (fail fast).
                    let controlling_goal = goal != and_like;
                    let mut ordered = x_inputs;
                    ordered.sort_by_key(|&i| self.cc.cost(i, goal));
                    if !controlling_goal {
                        ordered.reverse();
                    }
                    for i in ordered {
                        if let Some(hit) =
                            self.backtrace_rec(spec, i, frame, goal, failed, depth + 1)
                        {
                            return Some(hit);
                        }
                    }
                    None
                }
                CellKind::Xor | CellKind::Xnor => {
                    let inv = cell.kind() == CellKind::Xnor;
                    let inner = want ^ inv;
                    let mut acc = false;
                    for &i in cell.inputs() {
                        if let Some(b) = self.sim.good[frame - 1][i.index()].to_bool() {
                            acc ^= b;
                        }
                    }
                    let mut x_inputs = x_inputs;
                    x_inputs.sort_by_key(|&i| self.cc.cost(i, false).min(self.cc.cost(i, true)));
                    for i in &x_inputs {
                        // Remaining Xs (other than the chosen one) are
                        // aimed at 0, so the chosen one carries the
                        // parity.
                        if let Some(hit) =
                            self.backtrace_rec(spec, *i, frame, inner ^ acc, failed, depth + 1)
                        {
                            return Some(hit);
                        }
                    }
                    None
                }
                CellKind::Mux2 => {
                    let sel = cell.inputs()[0];
                    match self.sim.good[frame - 1][sel.index()].to_bool() {
                        Some(true) => self.backtrace_rec(
                            spec,
                            cell.inputs()[2],
                            frame,
                            want,
                            failed,
                            depth + 1,
                        ),
                        Some(false) => self.backtrace_rec(
                            spec,
                            cell.inputs()[1],
                            frame,
                            want,
                            failed,
                            depth + 1,
                        ),
                        None => {
                            // Try steering the select either way
                            // (cheaper side first), then the data legs.
                            let first = self.cc.cost(sel, true) < self.cc.cost(sel, false);
                            for (n, w) in [
                                (sel, first),
                                (sel, !first),
                                (cell.inputs()[1], want),
                                (cell.inputs()[2], want),
                            ] {
                                if let Some(hit) =
                                    self.backtrace_rec(spec, n, frame, w, failed, depth + 1)
                                {
                                    return Some(hit);
                                }
                            }
                            None
                        }
                    }
                }
                _ => None, // ties, RAM, latch, clock gate
            }
        })();
        if result.is_none() {
            failed.insert((node, frame, want));
        }
        result
    }
}

impl AtpgEngine for ReferencePodem<'_, '_> {
    fn run(
        &mut self,
        spec: &FrameSpec,
        obs: &Observability,
        fault: Fault,
        backtrack_limit: usize,
    ) -> PodemOutcome {
        ReferencePodem::run(self, spec, obs, fault, backtrack_limit)
    }

    fn engine_name(&self) -> &'static str {
        "reference"
    }

    fn kernel_stats(&self) -> AtpgKernelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_fault::{FaultUniverse, Polarity};
    use occ_fsim::{simulate_good, ClockBinding, CycleSpec, FaultSim};
    use occ_netlist::NetlistBuilder;

    struct Rig {
        nl: occ_netlist::Netlist,
        clk: CellId,
    }

    /// A small but non-trivial sequential circuit: two scan flops, one
    /// non-scan flop, reconvergent logic, a PO.
    fn rig() -> Rig {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let a = b.input("a");
        let c = b.input("b");
        let f0 = b.sdff(a, clk, se, si);
        let nf = b.dff(c, clk); // non-scan
        let g1 = b.and2(f0, nf);
        let g2 = b.xor2(g1, c);
        let g3 = b.or2(g2, f0);
        let f1 = b.sdff(g3, clk, se, f0);
        let g4 = b.nand2(f1, g2);
        b.output("po", g4);
        b.name_cell(f0, "f0");
        b.name_cell(f1, "f1");
        b.name_cell(nf, "nf");
        Rig {
            nl: b.finish().unwrap(),
            clk,
        }
    }

    fn model(r: &Rig) -> CaptureModel<'_> {
        let mut binding = ClockBinding::new();
        binding.add_domain("a", r.clk);
        binding.constrain(r.nl.find("se").unwrap(), Logic::Zero);
        binding.mask(r.nl.find("si").unwrap());
        CaptureModel::new(&r.nl, binding).unwrap()
    }

    /// Every PODEM-found pattern must actually detect its fault under
    /// the packed fault simulator (cross-engine agreement).
    #[test]
    fn found_tests_redetect_under_fault_sim() {
        let r = rig();
        let m = model(&r);
        for (spec, uni) in [
            (
                FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0]); 2]),
                FaultUniverse::stuck_at(&r.nl),
            ),
            (
                FrameSpec::broadside("loc", &[0], 2)
                    .hold_pi(true)
                    .observe_po(false),
                FaultUniverse::transition(&r.nl),
            ),
        ] {
            let obs = Observability::compute(&m, &spec);
            let mut podem = ReferencePodem::new(&m);
            let mut fsim = FaultSim::new(&m);
            let mut found = 0;
            for &fault in uni.faults() {
                if let PodemOutcome::Test(p) = podem.run(&spec, &obs, fault, 50) {
                    found += 1;
                    let good = simulate_good(&m, &spec, std::slice::from_ref(&p));
                    assert_eq!(
                        fsim.detect(&spec, &good, fault) & 1,
                        1,
                        "PODEM test for {fault} does not re-detect under {}",
                        spec.name()
                    );
                }
            }
            assert!(found > 0, "no tests found under {}", spec.name());
        }
    }

    /// Exhaustive confirmation of untestable claims on the small rig:
    /// if PODEM says untestable, brute-force over all assignments must
    /// agree.
    #[test]
    fn untestable_claims_verified_by_brute_force() {
        let r = rig();
        let m = model(&r);
        let spec = FrameSpec::broadside("loc", &[0], 2)
            .hold_pi(true)
            .observe_po(false);
        let obs = Observability::compute(&m, &spec);
        let uni = FaultUniverse::transition(&r.nl);
        let mut podem = ReferencePodem::new(&m);
        let mut fsim = FaultSim::new(&m);

        let n_scan = m.scan_flops().len();
        let n_pi = m.free_pis().len();
        let total_bits = n_scan + n_pi;
        assert!(total_bits <= 12, "brute force only viable on tiny rigs");

        for &fault in uni.faults() {
            let outcome = podem.run(&spec, &obs, fault, 10_000);
            let mut brute_detect = false;
            for bits in 0..(1u32 << total_bits) {
                let mut p = Pattern::empty(&m, &spec, 0);
                for i in 0..n_scan {
                    p.scan_load[i] = Logic::from_bool((bits >> i) & 1 == 1);
                }
                for i in 0..n_pi {
                    p.pis[0][i] = Logic::from_bool((bits >> (n_scan + i)) & 1 == 1);
                }
                let good = simulate_good(&m, &spec, std::slice::from_ref(&p));
                if fsim.detect(&spec, &good, fault) & 1 == 1 {
                    brute_detect = true;
                    break;
                }
            }
            match outcome {
                PodemOutcome::Test(_) => {
                    assert!(
                        brute_detect,
                        "PODEM found test but brute force none: {fault}"
                    );
                }
                PodemOutcome::Untestable => {
                    assert!(!brute_detect, "PODEM missed existing test for {fault}");
                }
                PodemOutcome::Aborted => {
                    panic!("abort with huge limit on tiny rig: {fault}")
                }
            }
        }
    }

    /// PI-hold makes PI-transition launches impossible; with free PIs
    /// the same faults become testable.
    #[test]
    fn pi_hold_blocks_pi_launches() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let a = b.input("a");
        let buf = b.buf(a);
        let ff = b.sdff(buf, clk, se, si);
        b.output("q", ff);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        binding.add_domain("c", clk);
        binding.constrain(nl.find("se").unwrap(), Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        let m = CaptureModel::new(&nl, binding).unwrap();
        let fault = Fault::transition(FaultSite::Output(buf), Polarity::P0);

        let held = FrameSpec::broadside("held", &[0], 2)
            .hold_pi(true)
            .observe_po(false);
        let obs_h = Observability::compute(&m, &held);
        let mut podem = ReferencePodem::new(&m);
        assert!(matches!(
            podem.run(&held, &obs_h, fault, 1_000),
            PodemOutcome::Untestable
        ));

        let free = FrameSpec::broadside("free", &[0], 2).observe_po(false);
        let obs_f = Observability::compute(&m, &free);
        assert!(matches!(
            podem.run(&free, &obs_f, fault, 1_000),
            PodemOutcome::Test(_)
        ));
    }
}
