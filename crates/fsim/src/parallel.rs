//! Sharded PPSFP: fault-partition parallelism over the serial engine.
//!
//! PPSFP is embarrassingly parallel across *faults*: each fault's
//! detection mask depends only on the shared read-only inputs (the
//! [`CaptureModel`], the [`FrameSpec`] and the good-machine batch), so
//! the collapsed fault universe can be sharded across worker threads
//! with **no shared mutable state** — every worker owns one private
//! [`FaultSim`] scratch arena (value/stamp/bucket vectors) which it
//! reuses for all faults of its shard.
//!
//! Determinism: result masks are written back by fault index, so the
//! output of [`ParallelFaultSim::detect_many`] is bit-identical to the
//! serial engine at any thread count, and the [`FaultStatus`] merge in
//! [`ParallelFaultSim::grade`] processes faults in universe order —
//! thread scheduling can never change a coverage report.
//!
//! Shards are interleaved blocks (worker `t` takes blocks `t`,
//! `t + T`, `t + 2T`, …) rather than one contiguous span per worker:
//! fault cost correlates strongly with netlist locality, and striding
//! spreads the expensive cones across all workers.

use crate::faultsim::FaultSim;
use crate::goodsim::GoodBatch;
use crate::graph::KernelStats;
use crate::{CaptureModel, FrameSpec};
use occ_fault::{Fault, FaultList, FaultStatus};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

/// Default number of faults per scheduling block.
const DEFAULT_BLOCK: usize = 128;

/// One worker shard's output: `(block start, masks)` pairs plus the
/// worker's kernel counters.
type ShardResult = (Vec<(usize, Vec<u64>)>, KernelStats);

/// A fault-partition scheduler running the PPSFP engine on worker
/// threads with per-thread scratch arenas.
///
/// # Examples
///
/// ```
/// use occ_netlist::{NetlistBuilder, Logic};
/// use occ_fault::FaultUniverse;
/// use occ_fsim::{ClockBinding, CaptureModel, FrameSpec, CycleSpec, Pattern,
///                simulate_good, FaultSim, ParallelFaultSim};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("t");
/// let clk = b.input("clk");
/// let d = b.input("d");
/// let se = b.input("se");
/// let si = b.input("si");
/// let ff = b.sdff(d, clk, se, si);
/// b.output("q", ff);
/// let nl = b.finish()?;
/// let mut binding = ClockBinding::new();
/// binding.add_domain("a", clk);
/// binding.constrain(se, Logic::Zero);
/// binding.mask(si);
/// let model = CaptureModel::new(&nl, binding)?;
///
/// let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
/// let mut p = Pattern::empty(&model, &spec, 0);
/// p.pis[0] = vec![Logic::One];
/// let good = simulate_good(&model, &spec, &[p]);
///
/// let faults = FaultUniverse::stuck_at(&nl).faults().to_vec();
/// let serial = FaultSim::new(&model).detect_many(&spec, &good, &faults);
/// let sharded = ParallelFaultSim::with_threads(&model, 4).detect_many(&spec, &good, &faults);
/// assert_eq!(serial, sharded);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ParallelFaultSim<'m, 'a> {
    model: &'m CaptureModel<'a>,
    threads: usize,
    block: usize,
    // Lazily-built serial engine reused across small-batch calls (the
    // ATPG compaction loop grades one pattern at a time; rebuilding
    // the scratch arenas per call would dominate).
    scratch: Option<FaultSim<'m, 'a>>,
    // Kernel work counters merged back from worker shards (atomic so
    // `detect_many(&self)` can record them).
    faults_graded: AtomicU64,
    cone_pruned: AtomicU64,
    events: AtomicU64,
}

impl<'m, 'a> ParallelFaultSim<'m, 'a> {
    /// Creates a scheduler using all available hardware parallelism.
    pub fn new(model: &'m CaptureModel<'a>) -> Self {
        let threads = thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_threads(model, threads)
    }

    /// Creates a scheduler with an explicit worker count (`0` and `1`
    /// both mean "run serially on the calling thread").
    pub fn with_threads(model: &'m CaptureModel<'a>, threads: usize) -> Self {
        ParallelFaultSim {
            model,
            threads: threads.max(1),
            block: DEFAULT_BLOCK,
            scratch: None,
            faults_graded: AtomicU64::new(0),
            cone_pruned: AtomicU64::new(0),
            events: AtomicU64::new(0),
        }
    }

    /// Kernel statistics aggregated over every shard this scheduler has
    /// run (plus the cached serial scratch engine, when used).
    pub fn kernel_stats(&self) -> KernelStats {
        let mut s = self.model.graph().static_stats();
        s.faults_graded = self.faults_graded.load(Ordering::Relaxed);
        s.cone_pruned = self.cone_pruned.load(Ordering::Relaxed);
        s.events = self.events.load(Ordering::Relaxed);
        if let Some(scratch) = &self.scratch {
            s.absorb(&scratch.kernel_stats());
        }
        s
    }

    /// Overrides the scheduling block size (faults handed to a worker
    /// at a time). Mainly for tests; the default suits real designs.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero.
    pub fn block_size(mut self, block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        self.block = block;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The capture model this scheduler is bound to.
    pub fn model(&self) -> &'m CaptureModel<'a> {
        self.model
    }

    /// Like [`ParallelFaultSim::detect_many`], but reuses a cached
    /// serial scratch arena for the small batches that fall below the
    /// sharding threshold (how the trait-object ATPG path calls in —
    /// static compaction grades one pattern at a time).
    pub fn detect_many_cached(
        &mut self,
        spec: &FrameSpec,
        good: &GoodBatch,
        faults: &[Fault],
    ) -> Vec<u64> {
        if self.threads == 1 || faults.len() <= self.block {
            let model = self.model;
            return self
                .scratch
                .get_or_insert_with(|| FaultSim::new(model))
                .detect_many(spec, good, faults);
        }
        self.detect_many(spec, good, faults)
    }

    /// Detects a batch of faults, returning one 64-bit mask per fault —
    /// bit-identical to [`FaultSim::detect_many`] at any thread count.
    pub fn detect_many(&self, spec: &FrameSpec, good: &GoodBatch, faults: &[Fault]) -> Vec<u64> {
        // Below roughly one block per worker the spawn overhead cannot
        // pay for itself; fall through to the serial engine.
        if self.threads == 1 || faults.len() <= self.block {
            let mut engine = FaultSim::new(self.model);
            let masks = engine.detect_many(spec, good, faults);
            self.merge_stats(&engine.kernel_stats());
            return masks;
        }

        let n_blocks = faults.len().div_ceil(self.block);
        let workers = self.threads.min(n_blocks);
        let mut out = vec![0u64; faults.len()];

        let shards: Vec<ShardResult> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|t| {
                    scope.spawn(move || {
                        // One scratch arena per worker, reused for the
                        // whole shard.
                        let mut engine = FaultSim::new(self.model);
                        let mut results = Vec::new();
                        let mut b = t;
                        while b < n_blocks {
                            let start = b * self.block;
                            let end = (start + self.block).min(faults.len());
                            let masks = engine.detect_many(spec, good, &faults[start..end]);
                            results.push((start, masks));
                            b += workers;
                        }
                        (results, engine.kernel_stats())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fault-sim worker panicked"))
                .collect()
        });

        // Deterministic merge: each block owns a disjoint index range.
        for (results, stats) in shards {
            self.merge_stats(&stats);
            for (start, masks) in results {
                out[start..start + masks.len()].copy_from_slice(&masks);
            }
        }
        out
    }

    fn merge_stats(&self, stats: &KernelStats) {
        self.faults_graded
            .fetch_add(stats.faults_graded, Ordering::Relaxed);
        self.cone_pruned
            .fetch_add(stats.cone_pruned, Ordering::Relaxed);
        self.events.fetch_add(stats.events, Ordering::Relaxed);
    }

    /// Grades every fault of `list` that is not yet detected against
    /// the batch and merges the detection masks into [`FaultStatus`]:
    /// a fault with a non-zero mask becomes
    /// `Detected { pattern: pattern_of_bit(lowest set bit) }`.
    ///
    /// The merge walks faults in universe order, so the resulting
    /// statuses are independent of thread count and scheduling. Returns
    /// the number of faults newly marked detected.
    pub fn grade(
        &self,
        spec: &FrameSpec,
        good: &GoodBatch,
        list: &mut FaultList,
        mut pattern_of_bit: impl FnMut(usize) -> u32,
    ) -> usize {
        let candidates: Vec<Fault> = list
            .iter()
            .filter(|(_, s)| !s.is_detected())
            .map(|(f, _)| f)
            .collect();
        let masks = self.detect_many(spec, good, &candidates);
        let mut newly = 0;
        for (fault, mask) in candidates.into_iter().zip(masks) {
            if mask != 0 {
                let bit = mask.trailing_zeros() as usize;
                list.set_status(
                    fault,
                    FaultStatus::Detected {
                        pattern: pattern_of_bit(bit),
                    },
                );
                newly += 1;
            }
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_good, ClockBinding, CycleSpec, Pattern};
    use occ_fault::FaultUniverse;
    use occ_netlist::{Logic, NetlistBuilder};

    /// A few dozen gates with reconvergence, scan flops and a PO.
    fn rig() -> occ_netlist::Netlist {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let mut prev = si;
        let mut taps = Vec::new();
        for i in 0..8 {
            let d = b.input(&format!("d{i}"));
            let f = b.sdff(d, clk, se, prev);
            let g = b.xor2(f, d);
            let h = b.and2(g, f);
            taps.push(h);
            prev = f;
        }
        let mut acc = taps[0];
        for &t in &taps[1..] {
            acc = b.or2(acc, t);
        }
        let fout = b.sdff(acc, clk, se, prev);
        b.output("po", acc);
        b.output("q", fout);
        b.finish().unwrap()
    }

    fn check_identical(threads: usize, block: usize) {
        let nl = rig();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", nl.find("clk").unwrap());
        binding.constrain(nl.find("se").unwrap(), Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        let model = CaptureModel::new(&nl, binding).unwrap();
        let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);

        let n_scan = model.scan_flops().len();
        let mut patterns = Vec::new();
        for i in 0..16u64 {
            let mut p = Pattern::empty(&model, &spec, 0);
            p.scan_load = (0..n_scan)
                .map(|s| Logic::from_bool((i >> (s % 16)) & 1 == 1))
                .collect();
            for frame in &mut p.pis {
                for (j, v) in frame.iter_mut().enumerate() {
                    *v = Logic::from_bool((i + j as u64).is_multiple_of(3));
                }
            }
            patterns.push(p);
        }
        let good = simulate_good(&model, &spec, &patterns);
        let faults = FaultUniverse::stuck_at(&nl).faults().to_vec();

        let serial = FaultSim::new(&model).detect_many(&spec, &good, &faults);
        let sharded = ParallelFaultSim::with_threads(&model, threads)
            .block_size(block)
            .detect_many(&spec, &good, &faults);
        assert_eq!(serial, sharded, "threads={threads} block={block}");
        assert!(
            serial.iter().any(|&m| m != 0),
            "degenerate: nothing detected"
        );
    }

    #[test]
    fn sharded_masks_match_serial_across_thread_counts() {
        for threads in [1, 2, 3, 8] {
            check_identical(threads, 4);
        }
    }

    #[test]
    fn sharded_masks_match_serial_with_ragged_tail_block() {
        // Block sizes that do not divide the fault count exercise the
        // final short block.
        for block in [1, 3, 7, 64] {
            check_identical(4, block);
        }
    }

    #[test]
    fn grade_merges_in_universe_order() {
        let nl = rig();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", nl.find("clk").unwrap());
        binding.constrain(nl.find("se").unwrap(), Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        let model = CaptureModel::new(&nl, binding).unwrap();
        let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
        let mut p = Pattern::empty(&model, &spec, 0);
        let n_scan = model.scan_flops().len();
        p.scan_load = (0..n_scan).map(|s| Logic::from_bool(s % 2 == 0)).collect();
        for frame in &mut p.pis {
            frame.fill(Logic::One);
        }
        let good = simulate_good(&model, &spec, &[p]);
        let uni = FaultUniverse::stuck_at(&nl);

        let mut serial_list = FaultList::new(uni.clone());
        let mut engine = FaultSim::new(&model);
        for fault in uni.faults().to_vec() {
            if engine.detect(&spec, &good, fault) != 0 {
                serial_list.set_status(fault, FaultStatus::Detected { pattern: 7 });
            }
        }

        for threads in [1, 2, 8] {
            let mut list = FaultList::new(uni.clone());
            let psim = ParallelFaultSim::with_threads(&model, threads).block_size(2);
            let newly = psim.grade(&spec, &good, &mut list, |_| 7);
            assert_eq!(newly, serial_list.report().detected, "threads={threads}");
            for (fault, status) in list.iter() {
                assert_eq!(status, serial_list.status(fault), "fault {fault}");
            }
        }
    }
}
