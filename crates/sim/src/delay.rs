//! Per-cell propagation delays for the event-driven simulator.

use crate::Time;
use occ_netlist::{CellId, CellKind, Netlist};
use std::collections::HashMap;

/// Assigns a propagation delay to every cell.
///
/// The default model uses small, distinct per-kind delays (gates faster
/// than flops) so that waveforms are realistic but easy to reason about
/// in tests; individual cells can be overridden, which the CPF tests use
/// to check glitch-freedom under skewed enables.
///
/// # Examples
///
/// ```
/// use occ_sim::DelayModel;
/// use occ_netlist::CellKind;
///
/// let mut dm = DelayModel::default();
/// assert!(dm.kind_delay(CellKind::Dff) > dm.kind_delay(CellKind::Not));
/// dm.set_kind(CellKind::Not, 3);
/// assert_eq!(dm.kind_delay(CellKind::Not), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DelayModel {
    base: Time,
    flop: Time,
    overrides_kind: HashMap<&'static str, Time>,
    overrides_cell: HashMap<CellId, Time>,
}

impl Default for DelayModel {
    /// Gates: 10 ps, flops/latches/CGC: 30 ps clock-to-out.
    fn default() -> Self {
        DelayModel {
            base: 10,
            flop: 30,
            overrides_kind: HashMap::new(),
            overrides_cell: HashMap::new(),
        }
    }
}

impl DelayModel {
    /// A uniform delay for every cell (useful for unit-delay testing).
    pub fn uniform(delay: Time) -> Self {
        DelayModel {
            base: delay,
            flop: delay,
            overrides_kind: HashMap::new(),
            overrides_cell: HashMap::new(),
        }
    }

    /// Overrides the delay for one cell kind.
    pub fn set_kind(&mut self, kind: CellKind, delay: Time) -> &mut Self {
        self.overrides_kind.insert(kind.mnemonic(), delay);
        self
    }

    /// Overrides the delay for one specific cell.
    pub fn set_cell(&mut self, cell: CellId, delay: Time) -> &mut Self {
        self.overrides_cell.insert(cell, delay);
        self
    }

    /// Delay for a kind with no cell-specific override.
    pub fn kind_delay(&self, kind: CellKind) -> Time {
        if let Some(&d) = self.overrides_kind.get(kind.mnemonic()) {
            return d;
        }
        match kind {
            k if k.is_flop() => self.flop,
            CellKind::LatchLow | CellKind::ClockGate => self.flop,
            CellKind::Ram { .. } | CellKind::RamOut { .. } => self.flop,
            CellKind::Input | CellKind::Output => 0,
            CellKind::Tie0 | CellKind::Tie1 | CellKind::TieX => 0,
            _ => self.base,
        }
    }

    /// Effective delay of a specific cell.
    pub fn delay(&self, cell: CellId, kind: CellKind) -> Time {
        self.overrides_cell
            .get(&cell)
            .copied()
            .unwrap_or_else(|| self.kind_delay(kind))
    }

    /// Compiles the model into a flat per-cell delay table for one
    /// netlist.
    ///
    /// The `HashMap`-keyed kind/cell overrides are a builder-surface
    /// convenience; every hot consumer — the event-driven simulator and
    /// the static timing engine — reads the compiled table instead, so
    /// a delay lookup is a single indexed load.
    pub fn compile(&self, netlist: &Netlist) -> CompiledDelays {
        CompiledDelays {
            delays: netlist
                .iter()
                .map(|(id, cell)| self.delay(id, cell.kind()))
                .collect(),
        }
    }
}

/// A [`DelayModel`] flattened into one delay per cell of a specific
/// netlist, indexed by [`CellId::index`].
///
/// Produced by [`DelayModel::compile`]; identical to calling
/// [`DelayModel::delay`] per cell (there is a test for that), without
/// the per-lookup kind dispatch and `HashMap` probes.
///
/// # Examples
///
/// ```
/// use occ_sim::DelayModel;
/// use occ_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a");
/// let g = b.not(a);
/// b.output("y", g);
/// let nl = b.finish().unwrap();
/// let table = DelayModel::uniform(7).compile(&nl);
/// assert_eq!(table.of(g), 7);
/// assert_eq!(table.of(a), 0); // ports are delay-free
/// ```
#[derive(Debug, Clone)]
pub struct CompiledDelays {
    delays: Vec<Time>,
}

impl CompiledDelays {
    /// The compiled delay of one cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range for the compiled netlist.
    #[inline]
    pub fn of(&self, cell: CellId) -> Time {
        self.delays[cell.index()]
    }

    /// The whole table, indexed by [`CellId::index`].
    #[inline]
    pub fn as_slice(&self) -> &[Time] {
        &self.delays
    }

    /// Number of cells compiled.
    #[inline]
    pub fn len(&self) -> usize {
        self.delays.len()
    }

    /// True when the compiled netlist had no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.delays.is_empty()
    }

    /// Consumes the table, returning the raw per-cell delays.
    #[inline]
    pub fn into_vec(self) -> Vec<Time> {
        self.delays
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_take_precedence() {
        let mut dm = DelayModel::uniform(5);
        let c = CellId::from_index(7);
        dm.set_kind(CellKind::And, 9);
        dm.set_cell(c, 1);
        assert_eq!(dm.kind_delay(CellKind::And), 9);
        assert_eq!(dm.delay(c, CellKind::And), 1);
        assert_eq!(dm.delay(CellId::from_index(8), CellKind::And), 9);
    }

    #[test]
    fn ports_have_zero_delay() {
        let dm = DelayModel::default();
        assert_eq!(dm.kind_delay(CellKind::Input), 0);
        assert_eq!(dm.kind_delay(CellKind::Output), 0);
    }

    #[test]
    fn compiled_table_matches_per_cell_lookup() {
        use occ_netlist::NetlistBuilder;
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let a = b.input("a");
        let inv = b.not(a);
        let g = b.and2(inv, a);
        let ff = b.dff(g, clk);
        b.output("y", ff);
        let nl = b.finish().unwrap();
        let mut dm = DelayModel::default();
        dm.set_kind(CellKind::And, 17);
        dm.set_cell(inv, 3);
        let table = dm.compile(&nl);
        assert_eq!(table.len(), nl.len());
        for (id, cell) in nl.iter() {
            assert_eq!(table.of(id), dm.delay(id, cell.kind()), "cell {id}");
        }
        assert_eq!(table.of(inv), 3);
        assert_eq!(table.of(g), 17);
        assert_eq!(table.as_slice()[ff.index()], 30);
        assert!(!table.is_empty());
        assert_eq!(table.into_vec().len(), nl.len());
    }
}
