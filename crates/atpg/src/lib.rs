//! # occ-atpg — automatic test pattern generation
//!
//! A PODEM-based ATPG engine operating on the same
//! [`occ_fsim::CaptureModel`] / [`occ_fsim::FrameSpec`] abstractions as
//! the fault simulator, so every Table 1 experiment of the paper is the
//! *same engine* offered a different set of named capture procedures:
//!
//! * stuck-at ATPG over 1..n-frame external-clock procedures
//!   (experiment (a)), including clock-sequential initialization of
//!   non-scan cells via extra pulses;
//! * broadside (launch-off-capture) transition ATPG over 2..n-frame
//!   procedures (experiments (b)–(e)), honouring PI-hold and PO-mask
//!   constraints and per-domain / inter-domain pulse sets;
//! * 64-pattern batched fault-simulation drop (fortuitous detection),
//!   random fill, reverse-order static compaction — all grading through
//!   the pluggable [`occ_fsim::FaultSimEngine`] trait, so the serial
//!   and sharded fault simulators are interchangeable with identical
//!   results;
//! * backtrack-limited search with proper untestable/aborted
//!   classification (the paper's "1 % ATPG untestable, 0.3 % aborted");
//! * structural fault grouping of the leftovers (the paper's §6 future
//!   work): cross-domain, PO-masked-only, PI-held-only, non-scan- and
//!   RAM-dependent;
//! * a pluggable [`AtpgEngine`] trait (the generation-side analogue of
//!   [`occ_fsim::FaultSimEngine`]): the retained scalar
//!   [`ReferencePodem`] and the compiled incremental [`CompiledPodem`]
//!   (flat lookup tables, stamped scratch, changed-cone re-simulation
//!   through [`DualGraphSim`]) produce identical outcomes — the
//!   compiled engine is just faster and allocation-free per decision.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod compiled;
mod dualsim;
mod engine;
mod flow;
mod podem;
mod reach;
mod scoap;

pub use classify::{classify_faults, ConeSummary};
pub use compiled::CompiledPodem;
pub use dualsim::{DualGraphSim, DualSim};
pub use engine::{AtpgEngine, AtpgKernelStats};
pub use flow::{
    run_atpg, run_atpg_cancellable, run_atpg_filled, run_atpg_preclassified, AtpgOptions,
    AtpgResult, AtpgStats, PatternFill, RandomFill,
};
pub use podem::{PodemOutcome, ReferencePodem};
pub use reach::Observability;
pub use scoap::{Controllability, INF};
