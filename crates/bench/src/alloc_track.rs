//! Allocation-counting global allocator + peak-RSS probe, shared by the
//! profiling binaries (`fsim_bench`, `profile_quick`) via `#[path]`
//! inclusion.
//!
//! Not part of the `occ_bench` library: the library forbids unsafe
//! code, and a [`GlobalAlloc`] impl is necessarily unsafe. Each binary
//! opts in explicitly:
//!
//! ```ignore
//! #[path = "../alloc_track.rs"]
//! mod alloc_track;
//!
//! #[global_allocator]
//! static ALLOC: alloc_track::CountingAlloc = alloc_track::CountingAlloc;
//! ```

// Each binary compiles this file separately and uses a different
// subset of it (profile_quick reads only `bytes` through the span
// recorder's alloc probe), so per-binary dead-code analysis misfires.
#![allow(dead_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`] wrapper counting every allocation and reallocation
/// (count + requested bytes) into process-wide relaxed atomics.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counters are side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// A point-in-time reading of the allocation counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllocSnapshot {
    /// Allocations (incl. reallocations) since process start.
    pub allocs: u64,
    /// Bytes requested since process start.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counter deltas accumulated since `earlier`.
    pub fn since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

/// Reads the current allocation counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

/// Peak resident-set size of this process in KiB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux or when unreadable.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok();
        }
    }
    None
}
