//! Tracing spans: RAII guards, a sharded recorder, thread-local
//! nesting.
//!
//! Design constraints, in order:
//!
//! 1. **Free when off.** Library crates (`occ-fsim`, `occ-atpg`,
//!    `occ-timing`, the artifact cache) call [`span`] unconditionally.
//!    With no recorder installed on the thread — or detail recording
//!    switched off — the guard is inert: one thread-local borrow, no
//!    clock read, no allocation.
//! 2. **Zero-alloc when on.** Each [`SpanRecorder`] preallocates its
//!    record shards; finishing a span is two monotonic clock reads and
//!    a push into reserved capacity. The fault-sim hot path is gated
//!    on this in CI with the counting allocator.
//! 3. **Nesting without plumbing.** The parent/child relation rides a
//!    thread-local stack, so a span opened three crates down lands
//!    under the flow stage that called it — no API threading.
//!
//! Spans record on the thread that opened them; worker threads of a
//! sharded engine carry no scope, so cross-thread fan-out is traced at
//! its orchestration point (where the caller blocks) — which is the
//! duration that matters for stage accounting.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum key=value attributes one span can carry. Fixed so a span
/// record is `Copy` and recording never allocates.
pub const MAX_ATTRS: usize = 4;

/// Record shards. Guards pick a shard by span id, so concurrent
/// threads recording into one recorder rarely contend.
const SHARDS: usize = 8;

/// Records preallocated per shard. Past this the shard vector grows
/// (an allocation) — deep traces still work, hot paths stay clean.
const SHARD_CAPACITY: usize = 512;

/// One span attribute value. Strings are `&'static` by design: span
/// names and attribute keys/values are code, not data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    /// Unsigned counter-like values (fault counts, pattern counts).
    U64(u64),
    /// Signed values.
    I64(i64),
    /// Ratios and seconds.
    F64(f64),
    /// Static labels (artifact kind, outcome).
    Str(&'static str),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Str(v) => f.write_str(v),
        }
    }
}

/// One finished span, as stored by the recorder.
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord {
    /// Unique id within the recorder (1-based; 0 is "no parent").
    pub id: u64,
    /// Parent span id, or 0 for a root.
    pub parent: u64,
    /// Static span name (`"flow"`, `"fsim.batch"`, `"cache.build"`).
    pub name: &'static str,
    /// Start offset in nanoseconds from the recorder's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Bytes allocated while the span was open, when an allocation
    /// probe is installed (see [`set_alloc_probe`]); 0 otherwise.
    pub alloc_bytes: u64,
    attrs: [(&'static str, AttrValue); MAX_ATTRS],
    attr_len: u8,
}

impl SpanRecord {
    /// The span's attributes, in the order they were set.
    #[must_use]
    pub fn attrs(&self) -> &[(&'static str, AttrValue)] {
        &self.attrs[..self.attr_len as usize]
    }

    /// Duration in seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.dur_ns as f64 / 1e9
    }

    /// Start offset in seconds from the recorder's epoch.
    #[must_use]
    pub fn start_seconds(&self) -> f64 {
        self.start_ns as f64 / 1e9
    }
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    next_id: AtomicU64,
    shards: Vec<Mutex<Vec<SpanRecord>>>,
}

/// A span sink: cheaply clonable (it is an `Arc`), shared by every
/// guard it hands out. One recorder per traced unit of work (a flow
/// run, a daemon job) keeps trees self-contained.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    inner: Arc<Inner>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanRecorder {
    /// Creates a recorder with preallocated shard capacity.
    #[must_use]
    pub fn new() -> Self {
        SpanRecorder {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                shards: (0..SHARDS)
                    .map(|_| Mutex::new(Vec::with_capacity(SHARD_CAPACITY)))
                    .collect(),
            }),
        }
    }

    /// Installs this recorder as the current thread's span sink until
    /// the returned scope drops (the previous scope, if any, is
    /// restored). `detail` controls whether fine-grained [`span`]s
    /// record; [`stage_span`]s always do.
    pub fn install(&self, detail: bool) -> InstalledScope {
        let prev = SCOPE.with(|s| {
            s.borrow_mut().replace(Scope {
                recorder: self.clone(),
                detail,
                stack: Vec::with_capacity(16),
            })
        });
        InstalledScope { prev: Some(prev) }
    }

    /// Whether the same underlying recorder.
    #[must_use]
    pub fn same_as(&self, other: &SpanRecorder) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Number of finished spans recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().expect("span shard poisoned").len())
            .sum()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All finished spans, sorted by start time (ties by id).
    #[must_use]
    pub fn records(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::with_capacity(self.len());
        for shard in &self.inner.shards {
            out.extend(shard.lock().expect("span shard poisoned").iter().copied());
        }
        out.sort_by_key(|r| (r.start_ns, r.id));
        out
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn push(&self, record: SpanRecord) {
        let shard = (record.id as usize) % SHARDS;
        self.inner.shards[shard]
            .lock()
            .expect("span shard poisoned")
            .push(record);
    }
}

struct Scope {
    recorder: SpanRecorder,
    detail: bool,
    stack: Vec<u64>,
}

thread_local! {
    static SCOPE: RefCell<Option<Scope>> = const { RefCell::new(None) };
}

/// RAII handle returned by [`SpanRecorder::install`]; dropping it
/// restores the previously installed scope (or none).
#[must_use = "dropping the scope immediately uninstalls the recorder"]
pub struct InstalledScope {
    prev: Option<Option<Scope>>,
}

impl Drop for InstalledScope {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            SCOPE.with(|s| *s.borrow_mut() = prev);
        }
    }
}

/// The recorder installed on this thread, if any.
#[must_use]
pub fn current() -> Option<SpanRecorder> {
    SCOPE.with(|s| s.borrow().as_ref().map(|scope| scope.recorder.clone()))
}

/// Whether fine-grained [`span`]s record on this thread.
#[must_use]
pub fn detail_enabled() -> bool {
    SCOPE.with(|s| s.borrow().as_ref().is_some_and(|scope| scope.detail))
}

/// The process-wide allocation probe: returns cumulative bytes
/// allocated by this process. Installed once (by a binary that owns a
/// counting global allocator); spans then carry an `alloc_bytes`
/// delta. Never installed in ordinary builds — the probe read is a
/// no-op returning 0.
static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Installs the allocation probe. First caller wins; later calls are
/// ignored (the probe is process-global, like the allocator it reads).
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = ALLOC_PROBE.set(probe);
}

fn probe_bytes() -> u64 {
    ALLOC_PROBE.get().map_or(0, |f| f())
}

struct ActiveSpan {
    recorder: SpanRecorder,
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    alloc0: u64,
    attrs: [(&'static str, AttrValue); MAX_ATTRS],
    attr_len: u8,
}

/// RAII span guard: the span's duration is open-to-drop. Inert (and
/// free) when no recorder was installed on this thread.
#[must_use = "a span measures until the guard drops; dropping immediately records nothing useful"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

const NO_ATTR: (&str, AttrValue) = ("", AttrValue::U64(0));

fn begin(name: &'static str, detail_only: bool) -> SpanGuard {
    SCOPE.with(|s| {
        let mut borrow = s.borrow_mut();
        let Some(scope) = borrow.as_mut() else {
            return SpanGuard { active: None };
        };
        if detail_only && !scope.detail {
            return SpanGuard { active: None };
        }
        let id = scope.recorder.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = scope.stack.last().copied().unwrap_or(0);
        scope.stack.push(id);
        let recorder = scope.recorder.clone();
        let start_ns = recorder.now_ns();
        SpanGuard {
            active: Some(ActiveSpan {
                recorder,
                id,
                parent,
                name,
                start_ns,
                alloc0: probe_bytes(),
                attrs: [NO_ATTR; MAX_ATTRS],
                attr_len: 0,
            }),
        }
    })
}

/// Opens a fine-grained (detail) span: records only when the installed
/// scope has detail recording on. Use for substage work — fault-sim
/// batches, PODEM phases, cache builds.
pub fn span(name: &'static str) -> SpanGuard {
    begin(name, true)
}

/// Opens a coarse span that records whenever *any* recorder is
/// installed, detail or not. Use for flow stage boundaries — the spans
/// stage timings are derived from.
pub fn stage_span(name: &'static str) -> SpanGuard {
    begin(name, false)
}

impl SpanGuard {
    /// The span id, when recording (stable within its recorder).
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }

    /// True when this guard will record on drop.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    fn push_attr(&mut self, key: &'static str, value: AttrValue) {
        if let Some(a) = self.active.as_mut() {
            let len = a.attr_len as usize;
            if len < MAX_ATTRS {
                a.attrs[len] = (key, value);
                a.attr_len += 1;
            }
        }
    }

    /// Attaches an unsigned attribute (ignored past [`MAX_ATTRS`]).
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        self.push_attr(key, AttrValue::U64(value));
    }

    /// Attaches a signed attribute.
    pub fn attr_i64(&mut self, key: &'static str, value: i64) {
        self.push_attr(key, AttrValue::I64(value));
    }

    /// Attaches a float attribute.
    pub fn attr_f64(&mut self, key: &'static str, value: f64) {
        self.push_attr(key, AttrValue::F64(value));
    }

    /// Attaches a static-string attribute.
    pub fn attr_str(&mut self, key: &'static str, value: &'static str) {
        self.push_attr(key, AttrValue::Str(value));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let dur_ns = a.recorder.now_ns().saturating_sub(a.start_ns);
        let alloc_bytes = probe_bytes().saturating_sub(a.alloc0);
        // Pop this span off the thread's nesting stack. Guards drop in
        // reverse open order under normal RAII; the retain fallback
        // keeps the stack sane if one is held across a sibling.
        SCOPE.with(|s| {
            if let Some(scope) = s.borrow_mut().as_mut() {
                if scope.stack.last() == Some(&a.id) {
                    scope.stack.pop();
                } else {
                    scope.stack.retain(|&id| id != a.id);
                }
            }
        });
        a.recorder.push(SpanRecord {
            id: a.id,
            parent: a.parent,
            name: a.name,
            start_ns: a.start_ns,
            dur_ns,
            alloc_bytes,
            attrs: a.attrs,
            attr_len: a.attr_len,
        });
    }
}

/// One node of a reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span itself.
    pub record: SpanRecord,
    /// Child spans, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total spans in this subtree (including this node).
    #[must_use]
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SpanNode::size).sum::<usize>()
    }

    /// The first descendant (or self) with this name, depth-first.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.record.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// A span forest reconstructed from finished records: roots in start
/// order, children nested under their parents.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    /// Top-level spans (parent id 0, or parent not present in the
    /// record set).
    pub roots: Vec<SpanNode>,
}

impl SpanTree {
    /// Builds the forest. Records whose parent is missing from the set
    /// become roots, so a partial capture still renders.
    #[must_use]
    pub fn build(records: &[SpanRecord]) -> SpanTree {
        let mut sorted: Vec<SpanRecord> = records.to_vec();
        sorted.sort_by_key(|r| (r.start_ns, r.id));
        let present: std::collections::HashSet<u64> = sorted.iter().map(|r| r.id).collect();
        // Children attach bottom-up: process in reverse start order so
        // every child is built before its parent consumes it.
        let mut nodes: std::collections::HashMap<u64, SpanNode> = std::collections::HashMap::new();
        let mut order: Vec<u64> = Vec::with_capacity(sorted.len());
        for r in &sorted {
            nodes.insert(
                r.id,
                SpanNode {
                    record: *r,
                    children: Vec::new(),
                },
            );
            order.push(r.id);
        }
        let mut roots: Vec<u64> = Vec::new();
        for r in sorted.iter().rev() {
            if r.parent != 0 && present.contains(&r.parent) {
                let node = nodes.remove(&r.id).expect("node inserted above");
                nodes
                    .get_mut(&r.parent)
                    .expect("parent present in set")
                    .children
                    .insert(0, node);
            } else {
                roots.push(r.id);
            }
        }
        roots.reverse();
        SpanTree {
            roots: roots
                .into_iter()
                .filter_map(|id| nodes.remove(&id))
                .collect(),
        }
    }

    /// Total spans across the forest.
    #[must_use]
    pub fn len(&self) -> usize {
        self.roots.iter().map(SpanNode::size).sum()
    }

    /// True when the forest holds no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// The first span (anywhere in the forest) with this name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        self.roots.iter().find_map(|r| r.find(name))
    }

    /// Renders an indented text tree: name, wall time, attributes and
    /// (when an allocation probe was installed) the per-span alloc
    /// delta. What `profile_quick` and `table1 --trace` print.
    #[must_use]
    pub fn render(&self) -> String {
        fn walk(node: &SpanNode, depth: usize, out: &mut String) {
            let r = &node.record;
            let indent = "  ".repeat(depth);
            let label_width = 28usize.saturating_sub(indent.len());
            out.push_str(&format!(
                "{indent}{:<label_width$} {:>10.3} ms",
                r.name,
                r.dur_ns as f64 / 1e6,
            ));
            if r.alloc_bytes > 0 {
                out.push_str(&format!("  {:>10} B", r.alloc_bytes));
            }
            for (k, v) in r.attrs() {
                out.push_str(&format!("  {k}={v}"));
            }
            out.push('\n');
            for child in &node.children {
                walk(child, depth + 1, out);
            }
        }
        let mut out = String::new();
        for root in &self.roots {
            walk(root, 0, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_inert_without_a_recorder() {
        let g = span("orphan");
        assert!(!g.is_recording());
        drop(g);
        let g = stage_span("orphan-stage");
        assert!(!g.is_recording());
    }

    #[test]
    fn nesting_rides_the_thread_scope() {
        let rec = SpanRecorder::new();
        {
            let _scope = rec.install(true);
            let root = stage_span("flow");
            let root_id = root.id().unwrap();
            {
                let child = span("atpg.search");
                assert_eq!(child.id(), Some(root_id + 1));
                let _grand = span("fsim.batch");
            }
            let sibling = span("atpg.compaction");
            drop(sibling);
            drop(root);
        }
        let tree = SpanTree::build(&rec.records());
        assert_eq!(tree.len(), 4);
        let flow = tree.find("flow").unwrap();
        assert_eq!(flow.children.len(), 2);
        assert_eq!(flow.children[0].record.name, "atpg.search");
        assert_eq!(flow.children[0].children[0].record.name, "fsim.batch");
        assert_eq!(flow.children[1].record.name, "atpg.compaction");
        // Children are wall-clock-contained in the parent.
        for child in &flow.children {
            assert!(child.record.start_ns >= flow.record.start_ns);
            assert!(
                child.record.start_ns + child.record.dur_ns
                    <= flow.record.start_ns + flow.record.dur_ns
            );
        }
    }

    #[test]
    fn detail_off_keeps_stage_spans_only() {
        let rec = SpanRecorder::new();
        {
            let _scope = rec.install(false);
            let stage = stage_span("atpg");
            assert!(stage.is_recording());
            let detail = span("fsim.batch");
            assert!(!detail.is_recording());
            assert!(!detail_enabled());
        }
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn install_restores_the_previous_scope() {
        let outer = SpanRecorder::new();
        let inner = SpanRecorder::new();
        let _a = outer.install(true);
        assert!(current().unwrap().same_as(&outer));
        {
            let _b = inner.install(false);
            assert!(current().unwrap().same_as(&inner));
        }
        assert!(current().unwrap().same_as(&outer));
        assert!(detail_enabled());
    }

    #[test]
    fn attrs_cap_at_max() {
        let rec = SpanRecorder::new();
        {
            let _scope = rec.install(true);
            let mut g = span("attrs");
            g.attr_u64("a", 1);
            g.attr_i64("b", -2);
            g.attr_f64("c", 0.5);
            g.attr_str("d", "x");
            g.attr_u64("overflow", 9);
        }
        let records = rec.records();
        let attrs = records[0].attrs();
        assert_eq!(attrs.len(), MAX_ATTRS);
        assert_eq!(attrs[0], ("a", AttrValue::U64(1)));
        assert_eq!(attrs[3], ("d", AttrValue::Str("x")));
    }

    #[test]
    fn render_shows_names_and_attrs() {
        let rec = SpanRecorder::new();
        {
            let _scope = rec.install(true);
            let _root = stage_span("flow");
            let mut c = span("cache.build");
            c.attr_str("kind", "design");
        }
        let text = SpanTree::build(&rec.records()).render();
        assert!(text.contains("flow"));
        assert!(text.contains("  cache.build"));
        assert!(text.contains("kind=design"));
    }
}
