//! Stable content hashing for cache keys.
//!
//! The artifact cache keys compiled artifacts by the *content* of what
//! produced them (a [`SocConfig`](occ_soc::SocConfig), a clocking
//! label, a delay model), so two clients submitting the same design
//! must hash it to the same key — across processes and across runs.
//! `std::collections::hash_map::DefaultHasher` is explicitly *not*
//! guaranteed stable, so the cache uses FNV-1a 64-bit: tiny, fully
//! specified, and entirely adequate for a cache whose collisions cost
//! a rebuild, not correctness (values are verified by construction —
//! a collision would hand a job artifacts for a different design, and
//! [`CaptureModel::with_graph`](occ_fsim::CaptureModel::with_graph)
//! rejects mismatched graphs).

/// FNV-1a, 64-bit. Feed bytes and primitives, then [`Fnv64::finish`].
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` via its bit pattern (`to_bits`), so `0.05`
    /// hashes identically everywhere and `-0.0 != 0.0` is harmless.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string, length-prefixed so `("ab","c")` and
    /// `("a","bc")` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Renders a hash the way the protocol exposes it: 16 lowercase hex
/// digits.
#[must_use]
pub fn hex(hash: u64) -> String {
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_fnv1a_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn length_prefix_separates_fields() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex(0x2a), "000000000000002a");
    }
}
