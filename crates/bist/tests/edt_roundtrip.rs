//! Seeded property-style checks on EDT delivery: whatever `encode`
//! solves, `expand` must actually deliver — and when a cube is
//! unencodable, splitting it must produce patterns that each deliver
//! their half of the care bits.

use occ_atpg::PatternFill;
use occ_bist::{ChainMap, EdtFill};
use occ_dft::{EdtCodec, EdtConfig, EdtError};
use occ_fsim::{CaptureModel, CycleSpec, FrameSpec, Pattern};
use occ_netlist::Logic;
use occ_soc::{generate, Soc, SocConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Recursively encode, splitting on `Unencodable` — mirrors what
/// `EdtFill` does, at the raw codec level. Singleton cares that still
/// fail (a decompressor output with no free variable on that cycle)
/// are recorded as dropped, like `EdtFill::dropped_cubes`.
fn encode_split(
    codec: &EdtCodec,
    cares: &[(usize, usize, bool)],
    dropped: &mut Vec<(usize, usize, bool)>,
) -> Vec<Vec<Vec<bool>>> {
    match codec.encode(cares) {
        Ok(channel_bits) => vec![codec.expand(&channel_bits)],
        Err(EdtError::Unencodable { .. }) => {
            if cares.len() <= 1 {
                dropped.extend_from_slice(cares);
                return Vec::new();
            }
            let (a, b) = cares.split_at(cares.len() / 2);
            let mut out = encode_split(codec, a, dropped);
            out.extend(encode_split(codec, b, dropped));
            out
        }
        Err(e) => panic!("unexpected encode error: {e:?}"),
    }
}

#[test]
fn encode_expand_roundtrip_delivers_every_care_bit() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = EdtConfig {
            channels: 2,
            chains: 12,
            shift_len: 10,
            lfsr_len: 16,
            warmup: 8,
            seed: seed ^ 0xED7,
        };
        let codec = EdtCodec::new(cfg);
        for _ in 0..8 {
            let n_cares = rng.gen_range(1..14);
            let mut cares: Vec<(usize, usize, bool)> = Vec::new();
            let mut used = std::collections::HashSet::new();
            for _ in 0..n_cares {
                let chain = rng.gen_range(0..12);
                let cycle = rng.gen_range(0..10);
                if used.insert((chain, cycle)) {
                    cares.push((chain, cycle, rng.gen_bool(0.5)));
                }
            }
            let mut dropped = Vec::new();
            let delivered = encode_split(&codec, &cares, &mut dropped);
            assert!(
                dropped.is_empty(),
                "ample warmup: no singleton should drop (seed {seed}, {dropped:?})"
            );
            for &(chain, cycle, v) in &cares {
                assert!(
                    delivered.iter().any(|d| d[chain][cycle] == v),
                    "care ({chain},{cycle})={v} not delivered by any split (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn unencodable_dense_cube_splits_and_still_delivers() {
    // One channel and almost no warmup: far fewer free variables than
    // care bits, so a dense cube cannot encode in one piece.
    let cfg = EdtConfig {
        channels: 1,
        chains: 8,
        shift_len: 8,
        lfsr_len: 8,
        warmup: 2,
        seed: 3,
    };
    let codec = EdtCodec::new(cfg);
    let mut rng = StdRng::seed_from_u64(11);
    let cares: Vec<(usize, usize, bool)> = (0..8)
        .flat_map(|chain| (0..8).map(move |cycle| (chain, cycle)))
        .map(|(chain, cycle)| (chain, cycle, rng.gen_bool(0.5)))
        .collect();
    assert!(
        matches!(codec.encode(&cares), Err(EdtError::Unencodable { .. })),
        "64 cares over 10 variables must be unencodable"
    );
    let mut dropped = Vec::new();
    let delivered = encode_split(&codec, &cares, &mut dropped);
    assert!(delivered.len() > 1, "the dense cube must have split");
    // Under this starved geometry some shift positions have no free
    // variable at all; those (and only those) singletons drop.
    for &(chain, cycle, v) in &cares {
        assert!(
            delivered.iter().any(|d| d[chain][cycle] == v) || dropped.contains(&(chain, cycle, v)),
            "care ({chain},{cycle}) neither delivered nor accounted as dropped"
        );
    }
    assert!(
        dropped.len() < cares.len() / 2,
        "most cares must still deliver ({} dropped)",
        dropped.len()
    );
}

fn soc_model(soc: &Soc) -> CaptureModel<'_> {
    CaptureModel::new(soc.netlist(), soc.binding(true)).unwrap()
}

fn all_domains_spec(soc: &Soc) -> FrameSpec {
    let domains: Vec<usize> = (0..soc.clock_ports().len()).collect();
    FrameSpec::new("capture", vec![CycleSpec::pulsing(&domains)])
}

#[test]
fn edtfill_delivers_care_bits_through_the_decompressor() {
    let soc = generate(&SocConfig::tiny(5));
    let model = soc_model(&soc);
    let spec = all_domains_spec(&soc);
    let map = ChainMap::new(&model, soc.chains());
    assert_eq!(map.unmapped(), 0, "every SOC scan flop sits on a chain");

    // paper_like keeps the device's 64-bit ring, which a single
    // channel cannot fully reach within warmup — size the ring to the
    // channel count so every shift position has free variables.
    let cfg = EdtConfig {
        lfsr_len: 16,
        ..EdtConfig::paper_like(map.chains(), map.shift_len())
    };
    let codec = EdtCodec::new(cfg);
    let mut fill = EdtFill::new(codec, map.clone(), 0x0CC);

    // A sparse cube: a handful of scan care bits, as PODEM would emit.
    let mut rng = StdRng::seed_from_u64(21);
    let mut cube = Pattern::empty(&model, &spec, 0);
    let mut cares: Vec<(usize, Logic)> = Vec::new();
    let mut used = std::collections::HashSet::new();
    while cares.len() < 6 {
        let slot = rng.gen_range(0..cube.scan_load.len());
        if !used.insert(slot) {
            continue;
        }
        let v = Logic::from_bool(rng.gen_bool(0.5));
        cube.scan_load[slot] = v;
        cares.push((slot, v));
    }
    let delivered = fill.deliver(cube.clone(), &model, &spec, 0);
    assert!(!delivered.is_empty(), "sparse cube must be deliverable");
    for &(slot, v) in &cares {
        assert!(
            delivered.iter().any(|p| p.scan_load[slot] == v),
            "care bit at slot {slot} lost in delivery"
        );
    }
    // The decompressor fills everything: no X left anywhere.
    for p in &delivered {
        assert!(p.scan_load.iter().all(|v| v.to_bool().is_some()));
        assert!(p.pis.iter().flatten().all(|v| v.to_bool().is_some()));
    }

    // Deterministic: the same seed delivers the same patterns.
    let codec2 = EdtCodec::new(EdtConfig {
        lfsr_len: 16,
        ..EdtConfig::paper_like(map.chains(), map.shift_len())
    });
    let mut fill2 = EdtFill::new(codec2, map, 0x0CC);
    assert_eq!(delivered, fill2.deliver(cube, &model, &spec, 0));
}

#[test]
fn edtfill_splits_dense_cube_against_tight_codec() {
    let soc = generate(&SocConfig::tiny(6));
    let model = soc_model(&soc);
    let spec = all_domains_spec(&soc);
    let map = ChainMap::new(&model, soc.chains());

    // Deliberately starved geometry: one channel, minimal warmup.
    let codec = EdtCodec::new(EdtConfig {
        channels: 1,
        chains: map.chains(),
        shift_len: map.shift_len(),
        lfsr_len: 16,
        warmup: 2,
        seed: 9,
    });
    let mut fill = EdtFill::new(codec, map, 7);

    let mut rng = StdRng::seed_from_u64(33);
    let mut cube = Pattern::empty(&model, &spec, 0);
    for v in &mut cube.scan_load {
        *v = Logic::from_bool(rng.gen_bool(0.5));
    }
    let cares: Vec<Logic> = cube.scan_load.clone();
    let delivered = fill.deliver(cube, &model, &spec, 0);
    assert!(fill.splits() > 0, "a fully-specified cube must split here");
    assert!(delivered.len() > 1);
    // Singleton sub-cubes landing on variable-free shift positions are
    // dropped; every other care bit must survive some split.
    let lost = cares
        .iter()
        .enumerate()
        .filter(|&(slot, &v)| !delivered.iter().any(|p| p.scan_load[slot] == v))
        .count();
    assert!(
        lost <= fill.dropped_cubes(),
        "{lost} care bits lost but only {} cubes dropped",
        fill.dropped_cubes()
    );
    assert!(lost < cares.len() / 2, "most care bits must deliver");
}

#[test]
fn edtfill_bootstrap_is_deterministic_and_definite() {
    let soc = generate(&SocConfig::tiny(7));
    let model = soc_model(&soc);
    let spec = all_domains_spec(&soc);
    let map = ChainMap::new(&model, soc.chains());
    let mk = || {
        EdtFill::new(
            EdtCodec::new(EdtConfig::paper_like(map.chains(), map.shift_len())),
            map.clone(),
            42,
        )
    };
    let (mut a, mut b) = (mk(), mk());
    let pa = a.bootstrap(&model, &spec, 0);
    assert_eq!(pa, b.bootstrap(&model, &spec, 0));
    assert!(pa.scan_load.iter().all(|v| v.to_bool().is_some()));
    // Successive bootstraps differ (the channel stream advances).
    assert_ne!(pa, a.bootstrap(&model, &spec, 0));
}
