//! Scan-chain round-trip: shifting a load through the stitched chains
//! with the cycle simulator must place exactly the values that direct
//! state injection would, and unloading must read the captured state
//! back out in the right order.

use occ_dft::{insert_scan, ScanConfig};
use occ_netlist::{Logic, NetlistBuilder};
use occ_sim::CycleSim;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_sequential(seed: u64, n_flops: usize) -> occ_netlist::Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new("dut");
    let clk = b.input("clk");
    let mut sigs = vec![b.input("pi0"), b.input("pi1")];
    let mut flops = Vec::new();
    for i in 0..n_flops {
        let d = sigs[rng.gen_range(0..sigs.len())];
        let ff = b.dff(d, clk);
        b.name_cell(ff, &format!("ff{i}"));
        flops.push(ff);
        sigs.push(ff);
        // Some combinational mixing.
        let a = sigs[rng.gen_range(0..sigs.len())];
        let c = sigs[rng.gen_range(0..sigs.len())];
        sigs.push(match rng.gen_range(0..3) {
            0 => b.and2(a, c),
            1 => b.xor2(a, c),
            _ => b.nor2(a, c),
        });
    }
    let last = *sigs.last().unwrap();
    b.output("po", last);
    b.finish().unwrap()
}

#[test]
fn shift_in_matches_direct_load() {
    for seed in 0..4u64 {
        let nl = random_sequential(seed, 12);
        let sc = insert_scan(&nl, &ScanConfig::new(3)).unwrap();
        let snl = sc.netlist();
        let clk = snl.find("clk").unwrap();

        // Desired load: pseudo-random bits per scan flop.
        let mut rng = StdRng::seed_from_u64(seed ^ 77);
        let want: std::collections::HashMap<_, _> = sc
            .chains()
            .iter()
            .flatten()
            .map(|&ff| {
                (
                    ff,
                    if rng.gen_bool(0.5) {
                        Logic::One
                    } else {
                        Logic::Zero
                    },
                )
            })
            .collect();

        // Shift the load in through the pins.
        let mut sim = CycleSim::new(snl);
        sim.set(sc.scan_enable(), Logic::One);
        sim.set(snl.find("pi0").unwrap(), Logic::Zero);
        sim.set(snl.find("pi1").unwrap(), Logic::Zero);
        let seqs = sc.load_sequence(|ff| want[&ff]);
        let max_len = sc.max_chain_len();
        for cycle in 0..max_len {
            for (ci, seq) in seqs.iter().enumerate() {
                // Shorter chains pad in front so their first real bit
                // arrives when needed: pad count = max_len - len.
                let pad = max_len - seq.len();
                let v = if cycle < pad {
                    Logic::X
                } else {
                    seq[cycle - pad]
                };
                sim.set(sc.scan_ins()[ci], v);
            }
            sim.pulse(&[clk]);
        }

        for (&ff, &v) in &want {
            assert_eq!(sim.value(ff), v, "seed {seed} flop {ff} after shift");
        }
    }
}

#[test]
fn unload_reads_state_in_chain_order() {
    let nl = random_sequential(9, 8);
    let sc = insert_scan(&nl, &ScanConfig::new(2)).unwrap();
    let snl = sc.netlist();
    let clk = snl.find("clk").unwrap();

    let mut sim = CycleSim::new(snl);
    // Inject a known state directly.
    let mut rng = StdRng::seed_from_u64(123);
    let state: std::collections::HashMap<_, _> = sc
        .chains()
        .iter()
        .flatten()
        .map(|&ff| {
            (
                ff,
                if rng.gen_bool(0.5) {
                    Logic::One
                } else {
                    Logic::Zero
                },
            )
        })
        .collect();
    for (&ff, &v) in &state {
        sim.set_flop(ff, v);
    }
    sim.set(sc.scan_enable(), Logic::One);
    sim.set(snl.find("pi0").unwrap(), Logic::Zero);
    sim.set(snl.find("pi1").unwrap(), Logic::Zero);
    for si in sc.scan_ins() {
        sim.set(*si, Logic::Zero);
    }
    sim.settle();

    // Unload: scan_out shows the chain tail first, then one flop per
    // pulse moving toward the head.
    for (ci, chain) in sc.chains().iter().enumerate() {
        let so = sc.scan_outs()[ci];
        assert_eq!(sim.value(so), state[chain.last().unwrap()]);
    }
    let mut observed: Vec<Vec<Logic>> = vec![Vec::new(); sc.chains().len()];
    for _ in 0..sc.max_chain_len() {
        for (ci, _) in sc.chains().iter().enumerate() {
            observed[ci].push(sim.value(sc.scan_outs()[ci]));
        }
        sim.pulse(&[clk]);
    }
    for (ci, chain) in sc.chains().iter().enumerate() {
        for (k, &ff) in chain.iter().rev().enumerate() {
            assert_eq!(
                observed[ci][k], state[&ff],
                "chain {ci} unload position {k}"
            );
        }
    }
}
