//! ATPG soundness and completeness referee: on random small circuits,
//! every PODEM verdict is checked against exhaustive enumeration of the
//! decision space — found tests must re-detect under the packed fault
//! simulator, untestable claims must have no counterexample. Both
//! engines run: the compiled engine's outcome must equal the
//! reference's *exactly* (same variant, same pattern bits).

use occ_atpg::{CompiledPodem, Observability, PodemOutcome, ReferencePodem};
use occ_fault::FaultUniverse;
use occ_fsim::{simulate_good, CaptureModel, ClockBinding, FaultSim, FrameSpec, Pattern};
use occ_netlist::{CellId, Logic, Netlist, NetlistBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random circuit kept tiny so exhaustive enumeration stays feasible.
fn tiny_circuit(seed: u64) -> (Netlist, CellId, CellId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new("tiny");
    let cka = b.input("cka");
    let ckb = b.input("ckb");
    let se = b.input("se");
    let si = b.input("si");
    let mut sigs = vec![b.input("pi0"), b.input("pi1")];
    let mut scan_count = 0;
    for i in 0..rng.gen_range(6..14) {
        let a = sigs[rng.gen_range(0..sigs.len())];
        let c = sigs[rng.gen_range(0..sigs.len())];
        let id = match rng.gen_range(0..8) {
            0 => b.and2(a, c),
            1 => b.or2(a, c),
            2 => b.xor2(a, c),
            3 => b.nand2(a, c),
            4 => b.not(a),
            5 => b.mux2(sigs[rng.gen_range(0..sigs.len())], a, c),
            6 if scan_count < 4 => {
                scan_count += 1;
                let clk = if rng.gen_bool(0.7) { cka } else { ckb };
                b.sdff(a, clk, se, si)
            }
            _ => {
                let clk = if rng.gen_bool(0.7) { cka } else { ckb };
                b.dff(a, clk)
            }
        };
        b.name_cell(id, &format!("n{i}"));
        sigs.push(id);
    }
    // Guarantee at least one scan flop and an observable output.
    let tail = *sigs.last().unwrap();
    let ff = b.sdff(tail, cka, se, si);
    b.output("q_ff", ff);
    b.output("po", tail);
    (b.finish().unwrap(), cka, ckb)
}

fn verify(seed: u64, spec: &FrameSpec, transition: bool) {
    let (nl, cka, ckb) = tiny_circuit(seed);
    let mut binding = ClockBinding::new();
    binding.add_domain("a", cka);
    binding.add_domain("b", ckb);
    binding.constrain(nl.find("se").unwrap(), Logic::Zero);
    binding.mask(nl.find("si").unwrap());
    let model = CaptureModel::new(&nl, binding).unwrap();

    let n_scan = model.scan_flops().len();
    let n_pi = model.free_pis().len();
    let pi_frames = if spec.holds_pi() { 1 } else { spec.frames() };
    let total_bits = n_scan + n_pi * pi_frames;
    if total_bits > 14 {
        return; // enumeration too large for this seed, skip
    }

    let uni = if transition {
        FaultUniverse::transition(&nl)
    } else {
        FaultUniverse::stuck_at(&nl)
    };
    let obs = Observability::compute(&model, spec);
    let mut podem = ReferencePodem::new(&model);
    let mut compiled = CompiledPodem::new(&model);
    let mut fsim = FaultSim::new(&model);

    for &fault in uni.faults() {
        let outcome = podem.run(spec, &obs, fault, 100_000);
        let compiled_outcome = compiled.run(spec, &obs, fault, 100_000);
        assert_eq!(
            outcome, compiled_outcome,
            "seed {seed}: engines diverge on {fault}"
        );
        let mut brute = false;
        'outer: for bits in 0..(1u64 << total_bits) {
            let mut p = Pattern::empty(&model, spec, 0);
            for i in 0..n_scan {
                p.scan_load[i] = Logic::from_bool((bits >> i) & 1 == 1);
            }
            for f in 0..pi_frames {
                for i in 0..n_pi {
                    let bit = n_scan + f * n_pi + i;
                    p.pis[f][i] = Logic::from_bool((bits >> bit) & 1 == 1);
                }
            }
            let good = simulate_good(&model, spec, std::slice::from_ref(&p));
            if fsim.detect(spec, &good, fault) & 1 == 1 {
                brute = true;
                break 'outer;
            }
        }
        match outcome {
            PodemOutcome::Test(p) => {
                assert!(
                    brute,
                    "seed {seed}: PODEM test but no brute test for {fault}"
                );
                let good = simulate_good(&model, spec, std::slice::from_ref(&p));
                assert_eq!(
                    fsim.detect(spec, &good, fault) & 1,
                    1,
                    "seed {seed}: PODEM pattern fails re-detection for {fault}"
                );
            }
            PodemOutcome::Untestable => {
                assert!(
                    !brute,
                    "seed {seed}: PODEM claims untestable but test exists for {fault}"
                );
            }
            PodemOutcome::Aborted => {
                panic!("seed {seed}: abort at huge limit on tiny circuit ({fault})")
            }
        }
    }
}

#[test]
fn stuck_at_single_frame_verdicts() {
    for seed in 0..8 {
        verify(
            seed,
            &FrameSpec::new("sa", vec![occ_fsim::CycleSpec::pulsing(&[0, 1])]),
            false,
        );
    }
}

#[test]
fn stuck_at_two_frame_verdicts() {
    for seed in 20..26 {
        verify(
            seed,
            &FrameSpec::new("sa2", vec![occ_fsim::CycleSpec::pulsing(&[0, 1]); 2]).hold_pi(true),
            false,
        );
    }
}

#[test]
fn transition_broadside_verdicts() {
    for seed in 40..48 {
        verify(
            seed,
            &FrameSpec::broadside("loc", &[0, 1], 2)
                .hold_pi(true)
                .observe_po(false),
            true,
        );
    }
}

#[test]
fn transition_single_domain_masked_verdicts() {
    for seed in 60..66 {
        verify(
            seed,
            &FrameSpec::broadside("dom_a", &[0], 2)
                .hold_pi(true)
                .observe_po(false),
            true,
        );
    }
}

#[test]
fn transition_inter_domain_verdicts() {
    for seed in 80..86 {
        verify(
            seed,
            &FrameSpec::new(
                "x_ab",
                vec![
                    occ_fsim::CycleSpec::pulsing(&[0]),
                    occ_fsim::CycleSpec::pulsing(&[1]),
                ],
            )
            .hold_pi(true)
            .observe_po(false),
            true,
        );
    }
}
