//! Multiple-input signature registers over GF(2).
//!
//! Both forms share one tap derivation so the scalar good-machine
//! predictor and the bit-sliced fault-difference compactor implement
//! the **same** hardware. The feedback always taps bit `len - 1`, so
//! the state-transition matrix is invertible: a single non-zero input
//! stream can never alias to the zero signature on its own — observed
//! aliasing is always a genuine multi-bit XOR cancellation.

use crate::SplitMix;
use occ_netlist::Logic;

fn derive_taps(len: usize, seed: u64) -> Vec<usize> {
    assert!((1..=64).contains(&len), "MISR length must be 1..=64");
    let mut rng = SplitMix::new(seed ^ 0x4D15_7000);
    let mut taps = vec![len - 1];
    if len > 1 {
        for _ in 0..3 {
            taps.push(rng.below(len - 1));
        }
    }
    taps.sort_unstable();
    taps.dedup();
    taps
}

/// Scalar MISR over three-valued [`Logic`]: predicts the good-machine
/// signature, with X contamination tracked explicitly — once an X
/// enters the register it spreads through the XOR network and the
/// signature becomes unknown ([`Misr::signature`] returns `None`).
#[derive(Debug, Clone)]
pub struct Misr {
    state: Vec<Logic>,
    taps: Vec<usize>,
}

impl Misr {
    /// A zero-initialized register of `len` bits (1..=64) with
    /// seed-derived feedback taps.
    pub fn new(len: usize, seed: u64) -> Self {
        Misr {
            state: vec![Logic::Zero; len],
            taps: derive_taps(len, seed),
        }
    }

    /// Register length.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True for a zero-length register (never constructed here, but
    /// clippy insists `len` has a companion).
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Back to the all-zero state.
    pub fn reset(&mut self) {
        self.state.fill(Logic::Zero);
    }

    pub(crate) fn xor(a: Logic, b: Logic) -> Logic {
        match (a, b) {
            (Logic::X | Logic::Z, _) | (_, Logic::X | Logic::Z) => Logic::X,
            (x, Logic::Zero) | (Logic::Zero, x) => x,
            (Logic::One, Logic::One) => Logic::Zero,
        }
    }

    /// One capture clock: shift with feedback, then XOR each input
    /// lane into its bit. `lanes` shorter than the register leaves the
    /// remaining bits shift-only.
    pub fn clock(&mut self, lanes: &[Logic]) {
        let fb = self
            .taps
            .iter()
            .fold(Logic::Zero, |acc, &t| Self::xor(acc, self.state[t]));
        for i in (1..self.state.len()).rev() {
            self.state[i] = self.state[i - 1];
        }
        self.state[0] = fb;
        for (i, &l) in lanes.iter().enumerate().take(self.state.len()) {
            self.state[i] = Self::xor(self.state[i], l);
        }
    }

    /// The signature as a bit-packed word, or `None` if any register
    /// bit is X — an X-contaminated signature compares unequal to
    /// everything and must invalidate the test, not pass it.
    pub fn signature(&self) -> Option<u64> {
        let mut sig = 0u64;
        for (i, &b) in self.state.iter().enumerate() {
            match b {
                Logic::X | Logic::Z => return None,
                Logic::One => sig |= 1 << i,
                Logic::Zero => {}
            }
        }
        Some(sig)
    }
}

/// Bit-sliced MISR: bit `p` of `state[j]` is register bit `j` of
/// pattern `p`'s **difference stream**, 64 patterns at once. Because
/// XOR is linear over GF(2) and every pattern starts from the zero
/// state, the 64 lanes evolve independently — a pattern's slice is
/// exactly what a scalar MISR fed only that pattern's diffs would
/// hold, i.e. faulty-signature XOR good-signature for that pattern.
#[derive(Debug, Clone)]
pub struct MisrBatch {
    state: Vec<u64>,
    taps: Vec<usize>,
}

impl MisrBatch {
    /// Same geometry and taps as [`Misr::new`] with the same inputs.
    pub fn new(len: usize, seed: u64) -> Self {
        MisrBatch {
            state: vec![0; len],
            taps: derive_taps(len, seed),
        }
    }

    /// Back to all-zero difference state for the next pattern batch.
    pub fn reset(&mut self) {
        self.state.fill(0);
    }

    /// One capture clock over all 64 patterns; `lanes[i]` carries
    /// pattern-packed difference bits for register bit `i`.
    pub fn clock(&mut self, lanes: &[u64]) {
        let fb = self.taps.iter().fold(0u64, |acc, &t| acc ^ self.state[t]);
        for i in (1..self.state.len()).rev() {
            self.state[i] = self.state[i - 1];
        }
        self.state[0] = fb;
        for (i, &l) in lanes.iter().enumerate().take(self.state.len()) {
            self.state[i] ^= l;
        }
    }

    /// Per-pattern mask of a non-zero residual signature: bit `p` set
    /// means pattern `p`'s difference stream **survived** compaction
    /// (faulty signature differs from good). A zero bit with non-zero
    /// input diffs is aliasing.
    pub fn nonzero(&self) -> u64 {
        self.state.iter().fold(0, |acc, &s| acc | s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_batch_agree() {
        // Feed the same single-pattern diff stream into the scalar
        // form (as One/Zero) and the batch form (bit 0) — residuals
        // must match bit for bit.
        let mut s = Misr::new(16, 42);
        let mut b = MisrBatch::new(16, 42);
        let stream = [0b1010u16, 0b0111, 0b0000, 0b1000, 0b0011];
        for &word in &stream {
            let lanes_s: Vec<Logic> = (0..4)
                .map(|i| {
                    if word >> i & 1 == 1 {
                        Logic::One
                    } else {
                        Logic::Zero
                    }
                })
                .collect();
            let lanes_b: Vec<u64> = (0..4).map(|i| u64::from(word >> i & 1)).collect();
            s.clock(&lanes_s);
            b.clock(&lanes_b);
        }
        let sig = s.signature().unwrap();
        let mut batch_sig = 0u64;
        for (j, &w) in b.state.iter().enumerate() {
            batch_sig |= (w & 1) << j;
        }
        assert_eq!(sig, batch_sig);
        assert_eq!(b.nonzero() & 1, u64::from(sig != 0));
    }

    #[test]
    fn x_poisons_signature() {
        let mut m = Misr::new(8, 1);
        m.clock(&[Logic::One, Logic::X]);
        assert_eq!(m.signature(), None);
        m.reset();
        m.clock(&[Logic::One, Logic::Zero]);
        assert!(m.signature().is_some());
    }

    #[test]
    fn single_nonzero_stream_never_aliases() {
        // Invertible transition matrix: one pulse on one lane, then
        // any number of empty clocks, leaves a non-zero residue.
        for lane in 0..8 {
            let mut b = MisrBatch::new(8, 9);
            let mut lanes = vec![0u64; 8];
            lanes[lane] = 1;
            b.clock(&lanes);
            for _ in 0..100 {
                b.clock(&[0; 8]);
            }
            assert_ne!(b.nonzero() & 1, 0, "lane {lane} aliased to zero");
        }
    }

    #[test]
    fn batch_lanes_are_independent() {
        // Pattern 3 gets a diff, pattern 5 does not.
        let mut b = MisrBatch::new(12, 3);
        b.clock(&[1 << 3, 0, 0]);
        b.clock(&[0, 0, 0]);
        assert_ne!(b.nonzero() & (1 << 3), 0);
        assert_eq!(b.nonzero() & (1 << 5), 0);
    }
}
