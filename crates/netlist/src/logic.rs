//! Four-valued logic (`0`, `1`, `X`, `Z`) and its algebra.
//!
//! The simulator crates operate on this scalar type; the fault simulator
//! re-implements the same algebra on packed 64-bit words and is
//! property-tested against this reference implementation.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A four-valued logic level.
///
/// `Z` (high impedance) only arises on tri-state/pad signals; every gate
/// input treats `Z` as [`Logic::X`], which is the standard pessimistic
/// interpretation.
///
/// # Examples
///
/// ```
/// use occ_netlist::Logic;
/// assert_eq!(Logic::One & Logic::X, Logic::X);
/// assert_eq!(Logic::Zero & Logic::X, Logic::Zero);
/// assert_eq!(!Logic::Zero, Logic::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown.
    #[default]
    X,
    /// High impedance (undriven).
    Z,
}

impl Logic {
    /// All four values, in a fixed order (useful for exhaustive tests).
    pub const ALL: [Logic; 4] = [Logic::Zero, Logic::One, Logic::X, Logic::Z];

    /// Converts a boolean to a definite logic level.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Returns `Some(bool)` for definite values, `None` for `X`/`Z`.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X | Logic::Z => None,
        }
    }

    /// True for `0` and `1`, false for `X` and `Z`.
    #[inline]
    pub fn is_definite(self) -> bool {
        matches!(self, Logic::Zero | Logic::One)
    }

    /// Collapses `Z` to `X`; gate inputs see floating nets as unknown.
    #[inline]
    pub fn drive(self) -> Self {
        match self {
            Logic::Z => Logic::X,
            other => other,
        }
    }

    /// N-ary AND over an iterator (identity `1`).
    pub fn and_all<I: IntoIterator<Item = Logic>>(iter: I) -> Logic {
        iter.into_iter().fold(Logic::One, |acc, v| acc & v)
    }

    /// N-ary OR over an iterator (identity `0`).
    pub fn or_all<I: IntoIterator<Item = Logic>>(iter: I) -> Logic {
        iter.into_iter().fold(Logic::Zero, |acc, v| acc | v)
    }

    /// N-ary XOR over an iterator (identity `0`).
    pub fn xor_all<I: IntoIterator<Item = Logic>>(iter: I) -> Logic {
        iter.into_iter().fold(Logic::Zero, |acc, v| acc ^ v)
    }

    /// Two-to-one multiplexer: returns `d0` when `sel` is `0`, `d1` when
    /// `sel` is `1`. For an unknown select the result is the common value
    /// of `d0` and `d1` if they agree and are definite, else `X`
    /// (the usual "optimistic X" mux semantics).
    #[inline]
    pub fn mux2(sel: Logic, d0: Logic, d1: Logic) -> Logic {
        match sel.drive() {
            Logic::Zero => d0.drive(),
            Logic::One => d1.drive(),
            _ => {
                let (a, b) = (d0.drive(), d1.drive());
                if a == b && a.is_definite() {
                    a
                } else {
                    Logic::X
                }
            }
        }
    }
}

impl Not for Logic {
    type Output = Logic;
    #[inline]
    fn not(self) -> Logic {
        match self.drive() {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }
}

impl BitAnd for Logic {
    type Output = Logic;
    #[inline]
    fn bitand(self, rhs: Logic) -> Logic {
        match (self.drive(), rhs.drive()) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }
}

impl BitOr for Logic {
    type Output = Logic;
    #[inline]
    fn bitor(self, rhs: Logic) -> Logic {
        match (self.drive(), rhs.drive()) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }
}

impl BitXor for Logic {
    type Output = Logic;
    #[inline]
    fn bitxor(self, rhs: Logic) -> Logic {
        match (self.drive(), rhs.drive()) {
            (Logic::Zero, b) if b.is_definite() => b,
            (Logic::One, Logic::Zero) => Logic::One,
            (Logic::One, Logic::One) => Logic::Zero,
            _ => Logic::X,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'X',
            Logic::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlling_values_beat_x() {
        assert_eq!(Logic::Zero & Logic::X, Logic::Zero);
        assert_eq!(Logic::X & Logic::Zero, Logic::Zero);
        assert_eq!(Logic::One | Logic::X, Logic::One);
        assert_eq!(Logic::X | Logic::One, Logic::One);
    }

    #[test]
    fn xor_never_resolves_x() {
        for v in Logic::ALL {
            if !v.is_definite() {
                assert_eq!(Logic::One ^ v, Logic::X);
                assert_eq!(v ^ Logic::Zero, Logic::X);
            }
        }
    }

    #[test]
    fn z_reads_as_x_at_gate_inputs() {
        assert_eq!(Logic::Z & Logic::One, Logic::X);
        assert_eq!(Logic::Z | Logic::Zero, Logic::X);
        assert_eq!(!Logic::Z, Logic::X);
    }

    #[test]
    fn mux_semantics() {
        use Logic::*;
        assert_eq!(Logic::mux2(Zero, One, Zero), One);
        assert_eq!(Logic::mux2(One, One, Zero), Zero);
        // Optimistic merge when both legs agree.
        assert_eq!(Logic::mux2(X, One, One), One);
        assert_eq!(Logic::mux2(X, One, Zero), X);
        assert_eq!(Logic::mux2(X, X, X), X);
    }

    #[test]
    fn demorgan_holds_for_definite_values() {
        for a in [Logic::Zero, Logic::One] {
            for b in [Logic::Zero, Logic::One] {
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }

    #[test]
    fn nary_folds() {
        use Logic::*;
        assert_eq!(Logic::and_all([One, One, Zero]), Zero);
        assert_eq!(Logic::and_all([One, One, One]), One);
        assert_eq!(Logic::or_all([Zero, Zero, One]), One);
        assert_eq!(Logic::xor_all([One, One, One]), One);
        assert_eq!(Logic::xor_all([] as [Logic; 0]), Zero);
    }

    #[test]
    fn default_is_x() {
        assert_eq!(Logic::default(), Logic::X);
    }
}
