//! # occ-obs — unified tracing and metrics for the flow stack
//!
//! Before this crate, runtime visibility was a patchwork: per-stage
//! flow timings in one ad-hoc struct, kernel counters in another,
//! cache counters in a third — all post-hoc, none live. This crate is
//! the one instrumentation substrate everything reports through:
//!
//! * [`span`] / [`stage_span`] — lightweight RAII tracing spans with
//!   monotonic clocks, parent/child nesting via a thread-local scope,
//!   and fixed-size key=value attributes. A [`SpanRecorder`] collects
//!   records into preallocated shards, so recording a span on a hot
//!   path (a fault-sim batch, a PODEM search phase) allocates nothing.
//!   With no recorder installed on the thread, `span()` is a cheap
//!   no-op — library crates instrument unconditionally and pay only
//!   when someone is watching.
//! * [`metrics`] — the process-wide [`MetricsRegistry`] of typed,
//!   pre-registered counters/gauges/histograms (all atomic, zero-alloc
//!   to bump). [`OccMetrics`] is the full catalog: kernel events,
//!   PODEM decisions, cache hit/miss/evict, queue depth, admission
//!   sheds, per-op request latency. The daemon's `metrics` wire op
//!   renders it as Prometheus text exposition.
//!
//! ## Span example
//!
//! ```
//! use occ_obs::{SpanRecorder, SpanTree};
//!
//! let recorder = SpanRecorder::new();
//! {
//!     let _scope = recorder.install(true); // detail spans on
//!     let _flow = occ_obs::stage_span("flow");
//!     let mut batch = occ_obs::span("fsim.batch");
//!     batch.attr_u64("faults", 128);
//! } // guards drop: records land in the recorder
//! let tree = SpanTree::build(&recorder.records());
//! assert_eq!(tree.roots[0].record.name, "flow");
//! assert_eq!(tree.roots[0].children[0].record.name, "fsim.batch");
//! ```
//!
//! ## Metrics example
//!
//! ```
//! let m = occ_obs::metrics();
//! m.kernel_faults_graded.add(42);
//! assert!(occ_obs::metrics().registry.render().contains("occ_kernel_faults_graded_total"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metric;
mod trace;

pub use metric::{
    metrics, Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, OccMetrics, CACHE_KINDS,
    CANCEL_CAUSES, DEFAULT_SECONDS_BOUNDS, ERROR_CODES, OPS, SHED_REASONS, STAGE_LABELS,
};
pub use trace::{
    current, detail_enabled, set_alloc_probe, span, stage_span, AttrValue, InstalledScope,
    SpanGuard, SpanNode, SpanRecord, SpanRecorder, SpanTree, MAX_ATTRS,
};
