//! # occ-lint — static design-rule and testability analysis
//!
//! The admission layer of the flow: checks a design **before** any
//! ATPG or fault-simulation cycles are spent on it, riding the
//! structures the workspace already compiles — the [`Netlist`] fanout
//! graph, the [`CaptureModel`]'s compiled `SimGraph` observability
//! cones, SCOAP controllability costs and the scan-chain metadata.
//! Zero allocation after the model compiles is the same budget the
//! engines run on: one pass builds a few flat scratch vectors sized by
//! the netlist and nothing per-diagnostic-check.
//!
//! ## Rule catalog
//!
//! | id | name | severity | catches |
//! |------|------|----------|---------|
//! | `L001` | `comb-loop` | error | combinational loops closed through transparent latch / clock-gate paths (the builder already rejects pure gate loops) |
//! | `L002` | `floating-net` | warning | unloaded drivers and logic fed by an uncontrolled `TieX` source |
//! | `L003` | `duplicate-name` | error | two cells claiming one instance name — a multiply-driven net in this single-driver IR |
//! | `L004` | `non-scan-capture` | warning | non-scan flops clocked by a bound capture domain |
//! | `L005` | `cdc-at-speed` | warning | inter-domain launch→capture paths the clocking mode exercises at functional speed |
//! | `L006` | `scan-chain` | error | scan-chain connectivity / ordering / enable-wiring breaks |
//! | `L007` | `untestable` | info | faults proven structurally untestable from cones + SCOAP `INF` costs |
//! | `L008` | `x-source` | warning | `TieX` / uninitialized non-scan state reaching scan-flop capture cones — the MISR observation cone LBIST signs off on |
//!
//! `L007` is also the perf hook: its fault list feeds
//! [`occ_atpg::run_atpg_preclassified`], which marks the faults
//! `Untestable` up front and skips their PODEM searches with an
//! identical final pattern set.
//!
//! ## Example
//!
//! ```
//! use occ_fsim::{CaptureModel, ClockBinding};
//! use occ_lint::{LintGate, Linter};
//! use occ_netlist::NetlistBuilder;
//!
//! let mut b = NetlistBuilder::new("d");
//! let clk = b.input("clk");
//! let se = b.input("se");
//! let si = b.input("si");
//! let a = b.input("a");
//! let f = b.sdff(a, clk, se, si);
//! b.output("q", f);
//! let nl = b.finish().unwrap();
//! let mut binding = ClockBinding::new();
//! binding.add_domain("c", clk);
//! let model = CaptureModel::new(&nl, binding).unwrap();
//! let report = Linter::new(&model).run();
//! assert!(report.passes(LintGate::Deny));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod model_rules;
mod netlist_rules;
mod untestable;

pub use diag::{Diagnostic, LintGate, LintReport, ParseLintGateError, RuleId, Severity};

use occ_core::ClockingMode;
use occ_dft::ScanChains;
use occ_fault::FaultUniverse;
use occ_fsim::CaptureModel;
use occ_netlist::Netlist;

/// Runs only the netlist-structural rules (`L001`–`L003`) — the checks
/// that need no clock binding. Used for fixtures and designs that do
/// not (yet) form a valid [`CaptureModel`].
pub fn check_netlist(netlist: &Netlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    netlist_rules::run(netlist, &mut out);
    out
}

/// The static analyzer: configure what context is available (clocking
/// mode for CDC rules, scan-chain metadata for chain rules), then
/// [`run`](Linter::run) or
/// [`run_with_universe`](Linter::run_with_universe).
#[derive(Debug)]
pub struct Linter<'a> {
    model: &'a CaptureModel<'a>,
    mode: Option<ClockingMode>,
    chains: Option<&'a ScanChains>,
}

impl<'a> Linter<'a> {
    /// Creates a linter over a bound capture model.
    pub fn new(model: &'a CaptureModel<'a>) -> Self {
        Linter {
            model,
            mode: None,
            chains: None,
        }
    }

    /// Enables the mode-aware CDC rule (`L005`) for a clocking mode.
    #[must_use]
    pub fn mode(mut self, mode: ClockingMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Enables the scan-chain rule (`L006`) against chain metadata.
    #[must_use]
    pub fn chains(mut self, chains: &'a ScanChains) -> Self {
        self.chains = Some(chains);
        self
    }

    /// Runs the structural rules (`L001`–`L006` and `L008`, as
    /// configured).
    pub fn run(&self) -> LintReport {
        let mut report = LintReport::default();
        report.cells_scanned = netlist_rules::run(self.model.netlist(), &mut report.diagnostics);
        model_rules::non_scan_capture(self.model, &mut report.diagnostics);
        if let Some(mode) = self.mode {
            model_rules::cdc_at_speed(self.model, mode, &mut report.diagnostics);
        }
        if let Some(chains) = self.chains {
            model_rules::scan_chain(self.model, chains, &mut report.diagnostics);
        }
        model_rules::x_source(self.model, &mut report.diagnostics);
        report
    }

    /// Runs the structural rules plus the untestability pass (`L007`)
    /// over a fault universe; the report's `untestable` list is the
    /// input to [`occ_atpg::run_atpg_preclassified`].
    pub fn run_with_universe(&self, universe: &FaultUniverse) -> LintReport {
        let mut report = self.run();
        report.faults_scanned = untestable::run(
            self.model,
            universe,
            &mut report.diagnostics,
            &mut report.untestable,
        );
        report
    }
}
