//! Figure-4 equivalence: the gate-level CPF, simulated with real
//! delays, must release exactly the pulses the behavioural model
//! predicts — two glitch-free at-speed pulses after a three-cycle
//! latency — across randomized, relaxed ATE protocol timings.

use occ_core::{
    AteExpansion, AteTiming, ClockPulseFilter, CpfBehavior, CpfConfig, EnhancedCpf,
    EnhancedCpfConfig, Pll, PllConfig, PulseSelect,
};
use occ_netlist::Logic;
use occ_sim::{DelayModel, EventSim, Waveform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs the gate-level CPF through one capture episode; returns the
/// observed rising edges of `clk_out` within the capture window.
fn run_episode(cfg: &CpfConfig, domain: usize, seed: u64) -> (Vec<u64>, AteExpansion, Pll) {
    let pll = Pll::new(PllConfig::paper());
    let behavior = CpfBehavior::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let timing = AteTiming {
        shift_period_ps: 40_000 + 2_000 * rng.gen_range(0u64..10),
        settle_ps: 20_000 + 1_000 * rng.gen_range(0u64..20),
    };
    let start = 200_000 + 777 * rng.gen_range(0u64..100);
    let ep = AteExpansion::expand(&behavior, &pll, domain, &timing, start);

    let cpf = ClockPulseFilter::generate(cfg);
    let nl = cpf.netlist();
    let ports = *cpf.ports();
    let mut sim = EventSim::new(nl, DelayModel::default());
    let clk_out = nl.find(&format!("{}_clk_out", cfg.prefix)).unwrap();
    sim.watch(clk_out);
    sim.watch(ports.pulse_enable);

    let end = ep.scan_en_rise + 400_000;
    sim.drive(ports.pll_clk, pll.domain_waveform(domain, end));
    sim.drive(ports.scan_en, ep.scan_en_waveform());
    sim.drive(ports.scan_clk, ep.scan_clk_waveform());
    sim.run_until(end);

    let edges: Vec<u64> = sim
        .trace()
        .edges(clk_out)
        .iter()
        .filter(|e| e.is_rising() && e.time >= ep.scan_en_fall && e.time < ep.scan_en_rise)
        .map(|e| e.time)
        .collect();
    (edges, ep, pll)
}

#[test]
fn exactly_two_pulses_released() {
    for seed in 0..20 {
        for domain in 0..2 {
            let (edges, ep, _pll) = run_episode(&CpfConfig::paper(), domain, seed);
            assert_eq!(
                edges.len(),
                2,
                "seed {seed} domain {domain}: expected 2 pulses, got {edges:?} (expected at {:?})",
                ep.expected_pulses
            );
        }
    }
}

#[test]
fn pulse_times_match_behavioral_model() {
    for seed in 100..112 {
        for domain in 0..2 {
            let (edges, ep, pll) = run_episode(&CpfConfig::paper(), domain, seed);
            assert_eq!(edges.len(), ep.expected_pulses.len());
            for (got, want) in edges.iter().zip(&ep.expected_pulses) {
                // Gate delays shift the observed edge by a few tens of
                // ps; well under a tenth of a period.
                let slack = pll.domain_period(domain) / 10;
                assert!(
                    got.abs_diff(*want) <= slack,
                    "seed {seed} domain {domain}: edge {got} vs predicted {want}"
                );
            }
        }
    }
}

#[test]
fn pulses_are_full_width_no_glitches() {
    for seed in 200..212 {
        let cfg = CpfConfig::paper();
        let pll = Pll::new(PllConfig::paper());
        let behavior = CpfBehavior::new(&cfg);
        let timing = AteTiming::relaxed();
        let ep = AteExpansion::expand(&behavior, &pll, 1, &timing, 300_000 + seed * 101);

        let cpf = ClockPulseFilter::generate(&cfg);
        let nl = cpf.netlist();
        let ports = *cpf.ports();
        let mut sim = EventSim::new(nl, DelayModel::default());
        let clk_out = nl.find("cpf_clk_out").unwrap();
        sim.watch(clk_out);
        let end = ep.scan_en_rise + 100_000;
        sim.drive(ports.pll_clk, pll.domain_waveform(1, end));
        sim.drive(ports.scan_en, ep.scan_en_waveform());
        sim.drive(ports.scan_clk, ep.scan_clk_waveform());
        sim.run_until(end);

        // Every pulse in the capture window is a full PLL half-period.
        let widths: Vec<u64> = {
            let mut rise = None;
            let mut ws = Vec::new();
            for e in sim.trace().edges(clk_out) {
                if e.time < ep.scan_en_fall || e.time > ep.scan_en_rise {
                    continue;
                }
                if e.is_rising() {
                    rise = Some(e.time);
                } else if let Some(r) = rise.take() {
                    ws.push(e.time - r);
                }
            }
            ws
        };
        let half = pll.domain_period(1) / 2;
        for w in &widths {
            assert!(
                w.abs_diff(half) <= half / 10,
                "seed {seed}: pulse width {w} vs half-period {half}"
            );
        }
        // And the output never goes X during the episode.
        assert!(!sim
            .trace()
            .has_unknown_after(clk_out, ep.scan_en_fall + 50_000));
    }
}

#[test]
fn no_pulses_without_trigger() {
    // scan_en drops but no scan_clk trigger pulse arrives: clk_out must
    // stay silent.
    let cfg = CpfConfig::paper();
    let pll = Pll::new(PllConfig::paper());
    let cpf = ClockPulseFilter::generate(&cfg);
    let nl = cpf.netlist();
    let ports = *cpf.ports();
    let mut sim = EventSim::new(nl, DelayModel::default());
    let clk_out = nl.find("cpf_clk_out").unwrap();
    sim.watch(clk_out);
    sim.drive(ports.pll_clk, pll.domain_waveform(0, 2_000_000));
    sim.drive(
        ports.scan_en,
        Waveform::steps(&[(0, Logic::One), (300_000, Logic::Zero)]),
    );
    sim.drive(ports.scan_clk, Waveform::constant(Logic::Zero));
    sim.run_until(2_000_000);
    assert_eq!(sim.trace().rising_edges_in(clk_out, 320_000, 2_000_000), 0);
}

#[test]
fn scan_clk_passes_through_in_shift_mode() {
    let cfg = CpfConfig::paper();
    let pll = Pll::new(PllConfig::paper());
    let cpf = ClockPulseFilter::generate(&cfg);
    let nl = cpf.netlist();
    let ports = *cpf.ports();
    let mut sim = EventSim::new(nl, DelayModel::default());
    let clk_out = nl.find("cpf_clk_out").unwrap();
    sim.watch(clk_out);
    sim.drive(ports.pll_clk, pll.domain_waveform(0, 3_000_000));
    sim.drive(ports.scan_en, Waveform::constant(Logic::One));
    // 10 shift pulses at 20 MHz.
    sim.drive(ports.scan_clk, Waveform::pulse_train(50_000, 200_000, 10));
    sim.run_until(3_000_000);
    assert_eq!(sim.trace().rising_edges_in(clk_out, 0, 3_000_000), 10);
}

#[test]
fn filter_rearms_for_consecutive_captures() {
    // Two capture episodes back to back must each deliver two pulses.
    let cfg = CpfConfig::paper();
    let pll = Pll::new(PllConfig::paper());
    let behavior = CpfBehavior::new(&cfg);
    let timing = AteTiming::relaxed();
    let ep1 = AteExpansion::expand(&behavior, &pll, 0, &timing, 300_000);
    let ep2 = AteExpansion::expand(&behavior, &pll, 0, &timing, ep1.scan_en_rise + 100_000);

    let cpf = ClockPulseFilter::generate(&cfg);
    let nl = cpf.netlist();
    let ports = *cpf.ports();
    let mut sim = EventSim::new(nl, DelayModel::default());
    let clk_out = nl.find("cpf_clk_out").unwrap();
    sim.watch(clk_out);
    let end = ep2.scan_en_rise + 200_000;
    sim.drive(ports.pll_clk, pll.domain_waveform(0, end));
    sim.drive(
        ports.scan_en,
        Waveform::steps(&[
            (0, Logic::One),
            (ep1.scan_en_fall, Logic::Zero),
            (ep1.scan_en_rise, Logic::One),
            (ep2.scan_en_fall, Logic::Zero),
            (ep2.scan_en_rise, Logic::One),
        ]),
    );
    sim.drive(
        ports.scan_clk,
        Waveform::steps(&[
            (0, Logic::Zero),
            (ep1.trigger_rise, Logic::One),
            (ep1.trigger_fall, Logic::Zero),
            (ep2.trigger_rise, Logic::One),
            (ep2.trigger_fall, Logic::Zero),
        ]),
    );
    sim.run_until(end);
    assert_eq!(
        sim.trace()
            .rising_edges_in(clk_out, ep1.scan_en_fall, ep1.scan_en_rise),
        2
    );
    assert_eq!(
        sim.trace()
            .rising_edges_in(clk_out, ep2.scan_en_fall, ep2.scan_en_rise),
        2
    );
}

#[test]
fn enhanced_cpf_delivers_programmed_burst() {
    let cfg = EnhancedCpfConfig::paper();
    let pll = Pll::new(PllConfig::paper());
    for pulses in 1..=4usize {
        for offset in 0..=1usize {
            let select = PulseSelect { pulses, offset };
            let behavior = select.behavior(cfg.base_latency);
            let timing = AteTiming::relaxed();
            let ep = AteExpansion::expand(&behavior, &pll, 1, &timing, 400_000);

            let ecpf = EnhancedCpf::generate(&cfg);
            let nl = ecpf.netlist();
            let ports = *ecpf.ports();
            let mut sim = EventSim::new(nl, DelayModel::default());
            let clk_out = nl.find("ecpf_clk_out").unwrap();
            sim.watch(clk_out);
            let (c0, c1, o0) = select.config_bits();
            sim.drive(ports.cfg_c0, Waveform::constant(Logic::from_bool(c0)));
            sim.drive(ports.cfg_c1, Waveform::constant(Logic::from_bool(c1)));
            sim.drive(ports.cfg_o0, Waveform::constant(Logic::from_bool(o0)));
            let end = ep.scan_en_rise + 200_000;
            sim.drive(ports.pll_clk, pll.domain_waveform(1, end));
            sim.drive(ports.scan_en, ep.scan_en_waveform());
            sim.drive(ports.scan_clk, ep.scan_clk_waveform());
            sim.run_until(end);

            let got: Vec<u64> = sim
                .trace()
                .edges(clk_out)
                .iter()
                .filter(|e| e.is_rising() && e.time >= ep.scan_en_fall && e.time < ep.scan_en_rise)
                .map(|e| e.time)
                .collect();
            assert_eq!(
                got.len(),
                pulses,
                "select {select:?}: got edges {got:?}, predicted {:?}",
                ep.expected_pulses
            );
            let slack = pll.domain_period(1) / 10;
            for (g, w) in got.iter().zip(&ep.expected_pulses) {
                assert!(
                    g.abs_diff(*w) <= slack,
                    "select {select:?}: edge {g} vs predicted {w}"
                );
            }
        }
    }
}

#[test]
fn inter_domain_staggering_orders_launch_before_capture() {
    // Domain 0 launches (1 pulse, offset 0), domain 1 captures (1
    // pulse, offset 1): the capture edge must come after the launch
    // edge when both are triggered together.
    let pll = Pll::new(PllConfig::paper());
    let launch = PulseSelect::inter_domain_launch().behavior(3);
    let capture = PulseSelect::inter_domain_capture().behavior(3);
    let trigger = 1_000_000;
    let l_edges = launch.pulse_edges(&pll, 0, trigger);
    let c_edges = capture.pulse_edges(&pll, 0, trigger);
    assert_eq!(l_edges.len(), 1);
    assert_eq!(c_edges.len(), 1);
    assert!(c_edges[0] > l_edges[0]);
}
