//! Cell records stored in the netlist arena.

use crate::{CellId, CellKind};

/// One cell instance: a kind, its input signals and an optional
/// hierarchical instance name.
///
/// Cells are created through [`NetlistBuilder`](crate::NetlistBuilder)
/// and are immutable once the netlist is finished (scan insertion and
/// other transforms produce rewritten netlists rather than mutating in
/// place).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    kind: CellKind,
    inputs: Vec<CellId>,
    name: Option<Box<str>>,
}

impl Cell {
    pub(crate) fn new(kind: CellKind, inputs: Vec<CellId>, name: Option<Box<str>>) -> Self {
        Cell { kind, inputs, name }
    }

    /// The primitive kind of this cell.
    #[inline]
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Input signals in pin order (see [`CellKind`] pin documentation).
    #[inline]
    pub fn inputs(&self) -> &[CellId] {
        &self.inputs
    }

    /// Hierarchical instance name, when one was assigned.
    #[inline]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The data input of a flip-flop (`d` pin).
    ///
    /// # Panics
    ///
    /// Panics if the cell is not a flip-flop.
    #[inline]
    pub fn flop_d(&self) -> CellId {
        assert!(self.kind.is_flop(), "flop_d on non-flop {}", self.kind);
        self.inputs[0]
    }

    /// The clock input of a clocked cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell has no clock pin.
    #[inline]
    pub fn clock(&self) -> CellId {
        let pin = self
            .kind
            .clock_pin()
            .unwrap_or_else(|| panic!("clock() on unclocked {}", self.kind));
        self.inputs[pin]
    }

    /// The scan-in pin of a scan flop.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not a scan flop.
    #[inline]
    pub fn scan_in(&self) -> CellId {
        assert!(self.kind.is_scan_flop(), "scan_in on {}", self.kind);
        self.inputs[3]
    }

    /// The scan-enable pin of a scan flop.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not a scan flop.
    #[inline]
    pub fn scan_enable(&self) -> CellId {
        assert!(self.kind.is_scan_flop(), "scan_enable on {}", self.kind);
        self.inputs[2]
    }

    /// Asynchronous reset pin, if this kind has one.
    #[inline]
    pub fn reset(&self) -> Option<CellId> {
        match self.kind {
            CellKind::DffRl | CellKind::DffRh => Some(self.inputs[2]),
            CellKind::SdffRl => Some(self.inputs[4]),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_accessors() {
        let d = CellId::from_index(0);
        let clk = CellId::from_index(1);
        let se = CellId::from_index(2);
        let si = CellId::from_index(3);
        let rstn = CellId::from_index(4);
        let cell = Cell::new(
            CellKind::SdffRl,
            vec![d, clk, se, si, rstn],
            Some("u_ff".into()),
        );
        assert_eq!(cell.flop_d(), d);
        assert_eq!(cell.clock(), clk);
        assert_eq!(cell.scan_enable(), se);
        assert_eq!(cell.scan_in(), si);
        assert_eq!(cell.reset(), Some(rstn));
        assert_eq!(cell.name(), Some("u_ff"));
    }

    #[test]
    #[should_panic(expected = "flop_d on non-flop")]
    fn flop_accessor_rejects_gates() {
        let a = CellId::from_index(0);
        Cell::new(CellKind::And, vec![a, a], None).flop_d();
    }

    #[test]
    fn reset_is_none_for_plain_dff() {
        let d = CellId::from_index(0);
        let clk = CellId::from_index(1);
        let cell = Cell::new(CellKind::Dff, vec![d, clk], None);
        assert_eq!(cell.reset(), None);
    }
}
