//! Error types for netlist construction and validation.

use crate::{CellId, CellKind};
use std::error::Error;
use std::fmt;

/// A structural defect found while validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A cell references an input id that does not exist (forward
    /// references are allowed during building but must be resolved).
    DanglingInput {
        /// The offending cell.
        cell: CellId,
        /// The referenced, non-existent id.
        input: CellId,
    },
    /// A cell has the wrong number of input pins for its kind.
    BadArity {
        /// The offending cell.
        cell: CellId,
        /// Its kind.
        kind: CellKind,
        /// Number of inputs it was given.
        got: usize,
    },
    /// The combinational part of the netlist contains a cycle.
    CombinationalLoop {
        /// A cell on the cycle.
        cell: CellId,
    },
    /// A `RamOut` cell's input is not a `Ram` macro.
    RamOutWithoutRam {
        /// The offending reader cell.
        cell: CellId,
    },
    /// A `RamOut` reads a data bit outside the RAM's word width.
    RamOutBitOutOfRange {
        /// The offending reader cell.
        cell: CellId,
        /// The requested bit.
        bit: u8,
        /// The RAM's word width.
        data_bits: u8,
    },
    /// A RAM handle is consumed by a non-`RamOut` cell.
    RamHandleMisused {
        /// The cell consuming the handle.
        cell: CellId,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::DanglingInput { cell, input } => {
                write!(f, "cell {cell} references non-existent input {input}")
            }
            ValidateError::BadArity { cell, kind, got } => {
                write!(f, "cell {cell} of kind {kind} has {got} inputs")
            }
            ValidateError::CombinationalLoop { cell } => {
                write!(f, "combinational loop through cell {cell}")
            }
            ValidateError::RamOutWithoutRam { cell } => {
                write!(f, "ram_out cell {cell} does not read a ram macro")
            }
            ValidateError::RamOutBitOutOfRange {
                cell,
                bit,
                data_bits,
            } => {
                write!(
                    f,
                    "ram_out cell {cell} reads bit {bit} of a {data_bits}-bit word"
                )
            }
            ValidateError::RamHandleMisused { cell } => {
                write!(f, "cell {cell} consumes a ram handle but is not ram_out")
            }
        }
    }
}

impl Error for ValidateError {}

/// Error returned by [`NetlistBuilder::finish`](crate::NetlistBuilder::finish).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError {
    errors: Vec<ValidateError>,
}

impl BuildError {
    pub(crate) fn new(errors: Vec<ValidateError>) -> Self {
        debug_assert!(!errors.is_empty());
        BuildError { errors }
    }

    /// All defects found, in discovery order.
    pub fn errors(&self) -> &[ValidateError] {
        &self.errors
    }
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist validation failed with {} error(s): ",
            self.errors.len()
        )?;
        let mut first = true;
        for e in &self.errors {
            if !first {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
            first = false;
        }
        Ok(())
    }
}

impl Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = BuildError::new(vec![ValidateError::BadArity {
            cell: CellId::from_index(3),
            kind: CellKind::Mux2,
            got: 2,
        }]);
        let s = err.to_string();
        assert!(s.contains("c3"));
        assert!(s.contains("mux2"));
        assert!(s.contains("2 inputs"));
    }
}
